"""Tests for lowering, list scheduling and register allocation."""

import pytest

from repro.core.kernels import get_kernel
from repro.core.lowering import (
    AbstractOp,
    CoeffOperand,
    GridOperand,
    VReg,
    lower_block,
    lower_point,
)
from repro.core.regalloc import AllocationError, linear_scan, live_intervals, max_pressure
from repro.core.schedule import (
    DEFAULT_LATENCIES,
    build_dependencies,
    schedule_block,
    verify_schedule,
)


class TestLowering:
    def test_flop_count_preserved(self, any_kernel):
        block = lower_point(any_kernel)
        assert block.flops() == any_kernel.flops_per_point

    def test_flop_count_preserved_under_unroll(self, any_kernel):
        block = lower_block(any_kernel, unroll=3)
        assert block.flops() == 3 * any_kernel.flops_per_point

    def test_grid_operand_count_matches_loads(self, any_kernel):
        block = lower_point(any_kernel)
        grid_ops = [src for op in block.ops for src in op.srcs
                    if isinstance(src, GridOperand)]
        assert len(grid_ops) == any_kernel.loads_per_point

    def test_one_store_per_point(self, any_kernel):
        block = lower_block(any_kernel, unroll=4)
        stores = block.store_ops
        assert len(stores) == 4
        assert [op.point for op in stores] == [0, 1, 2, 3]

    def test_points_tagged_on_operands(self):
        block = lower_block(get_kernel("jacobi_2d"), unroll=2)
        points = {src.point for op in block.ops for src in op.srcs
                  if isinstance(src, GridOperand)}
        assert points == {0, 1}

    def test_reassociation_creates_partial_sums(self):
        kernel = get_kernel("box3d1r")
        wide = lower_point(kernel, reassoc_width=3)
        narrow = lower_point(kernel, reassoc_width=1)
        assert wide.flops() == narrow.flops() == kernel.flops_per_point
        # The reassociated form should have a shorter critical path.
        assert schedule_block(wide.ops).makespan < schedule_block(narrow.ops).makespan

    def test_fma_fusion_used(self):
        block = lower_point(get_kernel("box2d1r"))
        mnemonics = {op.mnemonic for op in block.compute_ops}
        assert "fmadd.d" in mnemonics

    def test_subtraction_lowered(self):
        block = lower_point(get_kernel("ac_iso_cd"))
        mnemonics = [op.mnemonic for op in block.compute_ops]
        assert any(m in ("fsub.d", "fnmsub.d") for m in mnemonics)

    def test_invalid_unroll_rejected(self):
        with pytest.raises(ValueError):
            lower_block(get_kernel("jacobi_2d"), unroll=0)

    def test_literal_constants_become_named_operands(self):
        from repro.core.ir import GridRef, add, mul
        from repro.core.stencil import StencilKernel

        kernel = StencilKernel(
            name="const_kernel", dims=2, radius=1, inputs=["inp"], output="out",
            expr=add(mul(2.0, GridRef("inp", (0, 0))), GridRef("inp", (0, 1))),
            coefficients={},
        )
        block = lower_point(kernel)
        names = {src.name for op in block.ops for src in op.srcs
                 if isinstance(src, CoeffOperand)}
        assert any(name.startswith("__const") for name in names)
        assert any(name.startswith("__const") for name in block.const_values)


class TestScheduler:
    def test_schedule_is_valid_permutation(self, any_kernel):
        block = lower_block(any_kernel, unroll=2)
        scheduled = schedule_block(block.ops)
        assert verify_schedule(block.ops, scheduled.ops)

    def test_store_order_preserved(self, any_kernel):
        block = lower_block(any_kernel, unroll=4)
        scheduled = schedule_block(block.ops)
        stores = [op.point for op in scheduled.ops if op.is_store]
        assert stores == sorted(stores)

    def test_dependencies_respected(self):
        block = lower_block(get_kernel("j2d9pt"), unroll=2)
        preds = build_dependencies(block.ops)
        scheduled = schedule_block(block.ops)
        position = {id(op): idx for idx, op in enumerate(scheduled.ops)}
        for idx, op in enumerate(block.ops):
            for pred in preds[idx]:
                assert position[id(block.ops[pred])] < position[id(op)]

    def test_extra_deps_enforced(self):
        ops = [
            AbstractOp(mnemonic="fadd.d", dest=VReg(0),
                       srcs=[CoeffOperand("a"), CoeffOperand("b")]),
            AbstractOp(mnemonic="fmul.d", dest=VReg(1),
                       srcs=[CoeffOperand("c"), CoeffOperand("d")]),
        ]
        scheduled = schedule_block(ops, extra_deps=[(1, 0)])
        position = {id(op): idx for idx, op in enumerate(scheduled.ops)}
        assert position[id(ops[1])] < position[id(ops[0])]

    def test_cyclic_extra_deps_rejected(self):
        block = lower_block(get_kernel("jacobi_2d"), unroll=2)
        n = len(block.ops)
        with pytest.raises(ValueError, match="cyclic"):
            schedule_block(block.ops, extra_deps=[(n - 1, 0)])

    def test_undefined_vreg_rejected(self):
        bogus = [AbstractOp(mnemonic="fadd.d", dest=VReg(0),
                            srcs=[VReg(5), CoeffOperand("c")])]
        with pytest.raises(ValueError):
            schedule_block(bogus)

    def test_makespan_at_least_op_count(self):
        block = lower_point(get_kernel("star2d3r"))
        scheduled = schedule_block(block.ops)
        assert scheduled.makespan >= len(block.ops)

    def test_unrolling_improves_issue_density(self):
        kernel = get_kernel("jacobi_2d")
        single = schedule_block(lower_block(kernel, unroll=1).ops)
        quad = schedule_block(lower_block(kernel, unroll=4).ops)
        assert quad.makespan / 4 <= single.makespan

    def test_empty_block(self):
        scheduled = schedule_block([])
        assert scheduled.makespan == 0 and len(scheduled.ops) == 0

    def test_custom_latencies(self):
        block = lower_point(get_kernel("jacobi_2d"))
        slow = schedule_block(block.ops, latencies={"compute": 9})
        fast = schedule_block(block.ops, latencies={"compute": 1})
        assert slow.makespan >= fast.makespan


class TestRegisterAllocation:
    def test_intervals_cover_defs_and_uses(self):
        block = lower_point(get_kernel("jacobi_2d"))
        intervals = live_intervals(block.ops)
        for op_idx, op in enumerate(block.ops):
            if op.dest is not None:
                start, end = intervals[op.dest]
                assert start == op_idx and end >= start

    def test_allocation_success_with_large_pool(self, any_kernel):
        block = lower_block(any_kernel, unroll=2)
        scheduled = schedule_block(block.ops)
        result = linear_scan(scheduled.ops, list(range(32)))
        assert result.success
        assert result.max_live <= 32

    def test_allocation_fails_with_tiny_pool(self):
        block = lower_block(get_kernel("box3d1r"), unroll=4)
        scheduled = schedule_block(block.ops)
        result = linear_scan(scheduled.ops, [0, 1])
        assert not result.success

    def test_no_two_live_vregs_share_a_register(self, any_kernel):
        block = lower_block(any_kernel, unroll=2)
        scheduled = schedule_block(block.ops)
        result = linear_scan(scheduled.ops, list(range(3, 32)))
        assert result.success
        intervals = live_intervals(scheduled.ops)
        assigned = result.assignment
        vregs = list(assigned)
        for i, a in enumerate(vregs):
            for b in vregs[i + 1:]:
                if assigned[a] != assigned[b]:
                    continue
                a_start, a_end = intervals[a]
                b_start, b_end = intervals[b]
                # Overlap is only allowed at the read/write boundary.
                assert a_end <= b_start or b_end <= a_start

    def test_max_pressure_positive(self, any_kernel):
        block = lower_point(any_kernel)
        assert max_pressure(block.ops) >= 1

    def test_use_of_undefined_vreg_rejected(self):
        ops = [AbstractOp(mnemonic="fadd.d", dest=VReg(1), srcs=[VReg(0), VReg(0)])]
        with pytest.raises(AllocationError):
            linear_scan(ops, list(range(8)))
