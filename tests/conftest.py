"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.kernels import KERNEL_NAMES, TABLE1_KERNELS, get_kernel

#: Small tile shapes per kernel that keep simulation-based tests fast while
#: still exercising every loop level (several rows, several planes).
SMALL_TILES = {
    "jacobi_2d": (12, 12),
    "j2d5pt": (12, 12),
    "box2d1r": (12, 12),
    "j2d9pt": (14, 14),
    "j2d9pt_gol": (12, 12),
    "star2d3r": (16, 16),
    "star3d2r": (10, 10, 10),
    "ac_iso_cd": (12, 12, 12),
    "box3d1r": (8, 8, 8),
    "j3d27pt": (8, 8, 8),
    "star3d7pt": (8, 8, 8),
}


def small_tile(name: str):
    """Small-but-valid tile shape for a kernel."""
    return SMALL_TILES[name]


@pytest.fixture(params=sorted(KERNEL_NAMES))
def any_kernel(request):
    """Every registered kernel."""
    return get_kernel(request.param)


@pytest.fixture(params=sorted(TABLE1_KERNELS))
def table1_kernel(request):
    """Every Table-1 kernel."""
    return get_kernel(request.param)
