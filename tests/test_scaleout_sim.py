"""Direct multi-cluster scaleout simulation: timeline, identity, cross-checks.

The three contract-level properties from the issue are pinned here:

(a) a 1-cluster topology with an unconstrained HBM device is *bit-identical*
    to the single-cluster engine (golden-backed);
(b) the multi-cluster merge is invariant under the sweep worker count;
(c) the direct simulation agrees with the analytical projection within the
    documented tolerance on ``manticore-2`` for the paper kernels.
"""

import json
import math
from pathlib import Path

import pytest

from repro.core.kernels import TABLE1_KERNELS, get_kernel
from repro.machine import MachineSpec, get_machine
from repro.runner import run_kernel
from repro.scaleout.sim import (
    ANALYTICAL_TOLERANCE,
    DEFAULT_TILES_PER_CLUSTER,
    ClusterTimeline,
    ScaleoutSimError,
    TileWorkload,
    direct_scaleout_pair,
    direct_scaleout_table,
    run_timeline,
    scaleout_jobs,
    simulate_scaleout,
    tile_transfer_model,
)
from repro.snitch.hbm import SharedHbm

GOLDEN_PATH = Path(__file__).parent / "golden_cycles.json"


def _timeline(tiles, num_clusters=1, clusters_per_group=None,
              device=math.inf, port=1.0):
    clusters_per_group = clusters_per_group or num_clusters
    clusters = [ClusterTimeline(index=i, group=i // clusters_per_group,
                                seed=i, tiles=list(tiles))
                for i in range(num_clusters)]
    hbm = SharedHbm(num_groups=-(-num_clusters // clusters_per_group),
                    device_bytes_per_cycle=device, port_bytes_per_cycle=port)
    makespan = run_timeline(clusters, hbm)
    return makespan, clusters, hbm


def _work(compute, in_bytes=100, out_bytes=50):
    return TileWorkload(compute_cycles=compute, flops=1, fpu_util=1.0,
                        in_bytes=in_bytes, in_efficiency=1.0,
                        out_bytes=out_bytes, out_efficiency=1.0)


class TestTimeline:
    """Hand-checkable double-buffered schedules (port 1 B/cycle)."""

    def test_compute_bound_pipeline(self):
        # in: 100 cycles, out: 50, compute: 1000, three tiles.
        makespan, (cl,), _ = _timeline([_work(1000)] * 3)
        # Prologue in(0) 0-100; computes chain back to back; the last
        # write-back trails the last compute.
        assert cl.compute_end == [1100.0, 2100.0, 3100.0]
        assert makespan == pytest.approx(3150.0)
        assert cl.in_done[1] == pytest.approx(200.0)  # prefetch overlapped

    def test_memory_bound_pipeline(self):
        makespan, (cl,), _ = _timeline([_work(10)] * 3)
        # in0 0-100, in1 100-200, out0 200-250, in2 250-350, out1 350-400,
        # out2 400-450: the DMA queue is the critical path.
        assert cl.compute_end == [110.0, 210.0, 360.0]
        assert cl.out_done == [250.0, 400.0, 450.0]
        assert makespan == pytest.approx(450.0)

    def test_single_tile_has_no_prefetch(self):
        makespan, (cl,), _ = _timeline([_work(1000)])
        assert makespan == pytest.approx(100.0 + 1000.0 + 50.0)

    def test_two_clusters_share_the_device(self):
        # Device as fast as one port: two clusters in one group halve rates.
        makespan_shared, _, _ = _timeline([_work(10)] * 2, num_clusters=2,
                                          device=1.0)
        makespan_alone, _, _ = _timeline([_work(10)] * 2, num_clusters=1,
                                         device=1.0)
        assert makespan_shared > makespan_alone
        # Separate groups restore the single-cluster schedule.
        makespan_grouped, _, _ = _timeline([_work(10)] * 2, num_clusters=2,
                                           clusters_per_group=1, device=1.0)
        assert makespan_grouped == pytest.approx(makespan_alone)

    def test_unfinished_cluster_is_an_error(self):
        cl = ClusterTimeline(index=0, group=0, seed=0, tiles=[_work(10)])
        cl.queue.clear()  # sabotage: the input transfer never issues
        hbm = SharedHbm(1, 1.0, 1.0)
        with pytest.raises(ScaleoutSimError):
            run_timeline([cl], hbm)


class TestTransferModel:
    def test_matches_mean_dma_utilization_decomposition(self):
        from repro.runner import measure_dma_utilization, tile_traffic_bytes

        kernel = get_kernel("j3d27pt")
        tile = kernel.default_tile
        in_bytes, in_eff, out_bytes, out_eff = tile_transfer_model(kernel, tile)
        assert in_bytes + out_bytes == tile_traffic_bytes(kernel, tile)
        assert 0.0 < out_eff <= in_eff <= 1.0
        # The runner's mean utilization lies between the two directions.
        mean = measure_dma_utilization(kernel, tile)
        assert out_eff <= mean <= in_eff


class TestSingleClusterIdentity:
    """(a) one cluster + unconstrained HBM == the single-cluster engine."""

    @pytest.mark.parametrize("name,variant", [("jacobi_2d", "saris"),
                                              ("j3d27pt", "base"),
                                              ("ac_iso_cd", "saris")])
    def test_bit_identical_to_golden_and_run_kernel(self, name, variant):
        machine = MachineSpec.create("solo", hbm_device_gbs=math.inf)
        result = simulate_scaleout(name, variant=variant, machine=machine,
                                   tiles_per_cluster=1, workers=1)
        (tile,) = result.tile_results
        golden = json.loads(GOLDEN_PATH.read_text())[f"{name}/{variant}"]
        assert tile.cycles == golden["cycles"]
        direct_run = run_kernel(name, variant=variant).without_cluster()
        # Identity is modulo diagnostic phase timing, which scaleout's
        # bit-stable tile_results drop (a fresh run_kernel keeps its own).
        expected = direct_run.to_json_dict()
        expected.pop("phase_seconds", None)
        assert tile.to_json_dict() == expected
        # Unconstrained HBM: every transfer runs at the cluster DMA engine's
        # isolated service time, so the makespan decomposes exactly.
        in_bytes, in_eff, out_bytes, out_eff = tile_transfer_model(
            get_kernel(name), tile.tile_shape)
        bus = machine.timing_params().dma_bus_bytes
        expected = in_bytes / (bus * in_eff) + tile.cycles \
            + out_bytes / (bus * out_eff)
        assert result.cycles == pytest.approx(expected)

    def test_compute_metrics_mirror_the_cluster_run(self):
        machine = MachineSpec.create("solo", hbm_device_gbs=math.inf)
        result = simulate_scaleout("jacobi_2d", machine=machine,
                                   tiles_per_cluster=2, workers=1)
        (tile,) = result.tile_results
        assert result.compute_cycles_per_tile == tile.cycles
        assert result.total_flops == 2 * tile.total_flops


class TestWorkerInvariance:
    """(b) the merged multi-cluster result is bit-stable for any pool."""

    def test_serial_and_parallel_merges_identical(self):
        results = {}
        for workers in (1, 2):
            r = simulate_scaleout("jacobi_2d", machine="manticore-2",
                                  tiles_per_cluster=3, workers=workers)
            results[workers] = (r.to_json_dict(),
                                [t.to_json_dict() for t in r.tile_results])
        assert results[1] == results[2]

    def test_jobs_are_per_cluster_with_distinct_seeds(self):
        machine = get_machine("manticore-2")
        jobs = scaleout_jobs("jacobi_2d", "saris", machine)
        assert [job.seed for job in jobs] == [0, 1]
        # Tile jobs run on the single-cluster spec of the topology, which
        # canonicalizes to the paper machine (shared store entries).
        assert all(job.canonical_machine() is None for job in jobs)

    def test_multi_cluster_machine_hashes_as_one_of_its_clusters(self):
        """A single job cannot observe the topology: same hash as snitch-8."""
        from repro.sweep.job import SweepJob

        on_topology = SweepJob.make("jacobi_2d", machine="manticore-32")
        on_default = SweepJob.make("jacobi_2d")
        assert on_topology.canonical_machine() is None
        assert on_topology.content_hash() == on_default.content_hash()
        # The user-facing name is untouched (experiment records report it).
        assert on_topology.machine.name == "manticore-32"


class TestAnalyticalCrossCheck:
    """(c) direct vs analytical within the documented tolerance."""

    def test_paper_kernels_on_manticore_2(self):
        table = direct_scaleout_table(TABLE1_KERNELS, machine="manticore-2",
                                      workers=1)
        assert set(table) == set(TABLE1_KERNELS)
        for name, entry in table.items():
            assert abs(entry["speedup_delta"]) <= \
                ANALYTICAL_TOLERANCE["speedup_rel"], name
            assert abs(entry["fpu_util_delta"]) <= \
                ANALYTICAL_TOLERANCE["fpu_util_abs"], name
            # Both models must agree on the regime.
            assert entry["memory_bound"] == \
                entry["analytical"]["memory_bound"], name

    def test_pair_carries_both_models(self):
        pair = direct_scaleout_pair("jacobi_2d", machine="manticore-2",
                                    workers=1)
        assert pair["base"].variant == "base"
        assert pair["saris"].variant == "saris"
        assert pair["saris"].granularity == "epoch"
        assert pair["speedup"] > 1.0
        assert pair["analytical"]["speedup"] > 1.0
        assert pair["saris"].hbm["requests_completed"] == \
            2 * 2 * DEFAULT_TILES_PER_CLUSTER  # clusters x directions x tiles


class TestContention:
    def test_sharing_a_device_slows_the_memory_side(self):
        solo = simulate_scaleout(
            "jacobi_2d", machine=get_machine("manticore-2").with_topology(
                clusters_per_group=1), tiles_per_cluster=3, workers=1)
        shared = simulate_scaleout("jacobi_2d", machine="manticore-2",
                                   tiles_per_cluster=3, workers=1)
        assert shared.dma_service_cycles_per_tile > \
            solo.dma_service_cycles_per_tile
        assert shared.effective_cycles_per_tile >= \
            solo.effective_cycles_per_tile

    def test_unconstrained_topology_removes_contention(self):
        machine = get_machine("manticore-2").with_topology(
            hbm_device_gbs=math.inf)
        unconstrained = simulate_scaleout("jacobi_2d", machine=machine,
                                          tiles_per_cluster=3, workers=1)
        solo = simulate_scaleout(
            "jacobi_2d", machine=MachineSpec.create(
                "solo", hbm_device_gbs=math.inf),
            tiles_per_cluster=3, workers=1)
        # Two identical unconstrained clusters behave like one.
        assert unconstrained.cycles == pytest.approx(solo.cycles)


class TestArtifactIntegration:
    def test_scaleout_direct_is_a_registered_subset(self):
        from repro.sweep.artifacts import artifact_names, subset_choices

        assert "scaleout_direct" in artifact_names()
        assert "scaleout_direct" in subset_choices()

    def test_reproduce_builds_the_direct_table(self, tmp_path):
        from repro.sweep.artifacts import reproduce

        report = reproduce(subset="scaleout_direct", workers=1,
                           cache_dir=str(tmp_path / "cache"))
        (artifact,) = report["artifacts"]
        assert "Direct scaleout simulation on manticore-2" in artifact["title"]
        assert "epoch-granular" in artifact["title"]
        # One row per paper kernel plus the aggregate row.
        assert len(artifact["rows"]) == len(TABLE1_KERNELS) + 1

    def test_resultset_scaleout_direct_wiring(self):
        from repro import Experiment

        records = Experiment().kernels("jacobi_2d").run(workers=1, cache=False)
        table = records.scaleout(direct=True, workers=1, cache=False,
                                 tiles_per_cluster=2)
        assert set(table) == {"jacobi_2d"}
        entry = table["jacobi_2d"]
        assert entry["saris"].tiles_per_cluster == 2
        analytical = records.scaleout(machine="manticore-2")
        assert analytical["jacobi_2d"]["speedup"] > 0
