"""Tests for machine specs, presets, and machine-aware simulation."""

import pytest

from repro.core.parallel import cluster_geometry, coverage, default_interleave
from repro.machine import (
    DEFAULT_MACHINE_NAME,
    MachineSpec,
    default_machine,
    get_machine,
    machine_names,
    register_machine,
    resolve_machine,
    unregister_machine,
)
from repro.registry import RegistryError
from repro.runner import run_kernel
from repro.snitch.params import TimingParams
from tests.conftest import small_tile

#: Non-default presets exercised end-to-end (acceptance criterion).
NON_DEFAULT_PRESETS = ("snitch-4", "snitch-16", "snitch-8-wide")


class TestMachineSpec:
    def test_default_preset_matches_seed_timing(self):
        """snitch-8 must simulate with exactly the seed TimingParams."""
        assert default_machine().timing_params() == TimingParams()
        assert default_machine().name == DEFAULT_MACHINE_NAME
        assert (default_machine().x_interleave,
                default_machine().y_interleave) == (4, 2)

    def test_builtin_presets_registered(self):
        names = machine_names()
        assert names[0] == DEFAULT_MACHINE_NAME
        for preset in NON_DEFAULT_PRESETS:
            assert preset in names

    def test_create_derives_lanes_and_normalizes_overrides(self):
        spec = MachineSpec.create("m16", num_cores=16, fpu_latency=4,
                                  dma_bus_bytes=32)
        assert (spec.x_interleave, spec.y_interleave) == (4, 4)
        assert spec.timing_params().fpu_latency == 4
        assert spec.timing_params().dma_bus_bytes == 32
        assert spec.timing_overrides == (("dma_bus_bytes", 32),
                                         ("fpu_latency", 4))

    def test_lane_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cannot be arranged"):
            MachineSpec(name="bad", num_cores=8, x_interleave=4, y_interleave=3)

    def test_zero_interleave_rejected(self):
        from repro.core.parallel import GeometryError

        with pytest.raises(GeometryError, match="must be positive"):
            MachineSpec.create("bad", num_cores=8, x_interleave=0)
        with pytest.raises(GeometryError, match="must be positive"):
            MachineSpec.create("bad", num_cores=8, y_interleave=0)

    def test_unknown_timing_override_rejected(self):
        with pytest.raises(ValueError, match="unknown timing parameter"):
            MachineSpec.create("bad", warp_speed=11)

    def test_spec_owned_field_rejected_as_override(self):
        with pytest.raises(ValueError, match="MachineSpec field"):
            MachineSpec(name="bad", timing_overrides=(("num_cores", 4),))

    def test_resolve_accepts_name_spec_and_none(self):
        assert resolve_machine(None) is get_machine(DEFAULT_MACHINE_NAME)
        assert resolve_machine("snitch-4").num_cores == 4
        spec = MachineSpec.create("inline", num_cores=4)
        assert resolve_machine(spec) is spec
        with pytest.raises(RegistryError):
            resolve_machine("not-a-machine")
        with pytest.raises(TypeError):
            resolve_machine(8)

    def test_spec_dict_distinguishes_parameter_changes(self):
        base = get_machine("snitch-8")
        wide = get_machine("snitch-8-wide")
        tweaked = MachineSpec.create("snitch-8", fpu_latency=4)
        assert base.spec_dict() != wide.spec_dict()
        assert base.spec_dict() != tweaked.spec_dict()

    def test_register_and_unregister_custom_preset(self):
        spec = MachineSpec.create("test-custom", num_cores=2)
        register_machine(spec)
        try:
            assert get_machine("test-custom") is spec
            assert "test-custom" in machine_names()
            with pytest.raises(RegistryError, match="already registered"):
                register_machine(spec)
        finally:
            unregister_machine("test-custom")
        assert "test-custom" not in machine_names()


class TestMultiClusterTopology:
    def test_manticore_presets_registered(self):
        m2 = get_machine("manticore-2")
        assert (m2.groups, m2.clusters_per_group, m2.num_clusters) == (1, 2, 2)
        m32 = get_machine("manticore-32")
        assert (m32.groups, m32.clusters_per_group) == (8, 4)
        assert m32.num_clusters == 32 and m32.total_cores == 256
        assert m32.peak_system_gflops == pytest.approx(512.0)
        assert get_machine("manticore-8").num_clusters == 8

    def test_single_cluster_defaults_and_spec_dict_stability(self):
        """Topology fields must not disturb single-cluster hashes."""
        spec = get_machine("snitch-8")
        assert not spec.is_multi_cluster and spec.num_clusters == 1
        assert "topology" not in spec.spec_dict()
        multi = get_machine("manticore-2")
        assert multi.spec_dict()["topology"]["clusters_per_group"] == 2
        # The per-cluster shape of a manticore group is the paper cluster.
        assert multi.cluster_spec().spec_dict() == spec.spec_dict()
        assert not multi.cluster_spec().is_multi_cluster

    def test_with_topology_and_validation(self):
        import math

        spec = get_machine("manticore-2").with_topology(
            groups=2, hbm_device_gbs=math.inf)
        assert spec.groups == 2 and math.isinf(spec.hbm_device_gbs)
        with pytest.raises(ValueError, match="at least one group"):
            MachineSpec.create("bad", groups=0)
        with pytest.raises(ValueError, match="hbm_device_gbs"):
            MachineSpec.create("bad", hbm_device_gbs=0.0)

    def test_summary_reports_topology(self):
        assert get_machine("snitch-8").summary()["clusters"] == "1"
        assert "8x4" in get_machine("manticore-32").summary()["clusters"]

    def test_manticore_config_from_machine(self):
        from repro.scaleout import ManticoreConfig

        config = ManticoreConfig.from_machine(get_machine("manticore-32"))
        assert config == ManticoreConfig()  # the paper's stock 256s


class TestDefaultInterleave:
    def test_prefers_four_fold_x(self):
        assert default_interleave(8) == (4, 2)
        assert default_interleave(4) == (4, 1)
        assert default_interleave(16) == (4, 4)
        assert default_interleave(6) == (3, 2)
        assert default_interleave(1) == (1, 1)

    def test_geometry_partitions_exactly_for_presets(self):
        from repro.core.kernels import get_kernel

        kernel = get_kernel("jacobi_2d")
        for name in ("snitch-4", "snitch-16"):
            machine = get_machine(name)
            geometries = cluster_geometry(
                kernel, (16, 16), num_cores=machine.num_cores,
                x_interleave=machine.x_interleave,
                y_interleave=machine.y_interleave)
            assert len(geometries) == machine.num_cores
            assert set(coverage(geometries).values()) == {1}


class TestMachineAwareRuns:
    @pytest.mark.parametrize("preset", NON_DEFAULT_PRESETS)
    @pytest.mark.parametrize("variant", ["base", "saris"])
    def test_presets_run_correct_end_to_end(self, preset, variant):
        result = run_kernel("jacobi_2d", variant,
                            tile_shape=small_tile("jacobi_2d"),
                            machine=preset)
        assert result.correct
        assert result.activity.num_cores == get_machine(preset).num_cores

    def test_default_machine_is_bit_identical_to_bare_call(self):
        bare = run_kernel("jacobi_2d", "saris",
                          tile_shape=small_tile("jacobi_2d"))
        explicit = run_kernel("jacobi_2d", "saris",
                              tile_shape=small_tile("jacobi_2d"),
                              machine="snitch-8")
        assert bare.without_cluster() == explicit.without_cluster()

    def test_more_cores_run_faster(self):
        cycles = {}
        for preset in ("snitch-4", "snitch-8", "snitch-16"):
            cycles[preset] = run_kernel("j3d27pt", "saris",
                                        tile_shape=(8, 8, 8),
                                        machine=preset).cycles
        assert cycles["snitch-16"] < cycles["snitch-8"] < cycles["snitch-4"]

    def test_listing1_artifact_builds_on_non_default_machine(self):
        from repro.sweep.artifacts import build_listing1

        default = build_listing1()
        on4 = build_listing1(get_machine("snitch-4"))
        # Static per-point instruction mix is interleave-invariant, but the
        # artifact must build against the requested machine without error.
        assert on4["data"]["base"]["total"] > 0
        assert on4["data"]["saris"]["fraction"] == pytest.approx(
            default["data"]["saris"]["fraction"])

    def test_explicit_params_override_machine_timing(self):
        slow = run_kernel("jacobi_2d", "base",
                          tile_shape=small_tile("jacobi_2d"),
                          machine="snitch-8",
                          params=TimingParams(icache_miss_penalty=60))
        fast = run_kernel("jacobi_2d", "base",
                          tile_shape=small_tile("jacobi_2d"),
                          machine="snitch-8")
        assert slow.cycles > fast.cycles
