"""Golden-numbers regression for the fast simulation engine.

``golden_cycles.json`` was recorded from the original tick-everything
interpreter (the seed simulator) for all ten Table-1 kernels in both
variants at the paper tile sizes, *before* the engine was re-architected
around quiescence-aware scheduling, precomputed stream sequences and
compiled instruction handlers.  Every cycle count, per-core stall breakdown,
FPU issue/stall statistic and TCDM conflict statistic must match the seed
exactly — the fast engine is an optimization, not a model change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import run_kernel
from repro.core.kernels import TABLE1_KERNELS

GOLDEN_PATH = Path(__file__).parent / "golden_cycles.json"

with GOLDEN_PATH.open() as fh:
    GOLDEN = json.load(fh)


def _snapshot(cluster_result) -> dict:
    """The observable statistics of one run, in golden-file form."""
    return {
        "cycles": cluster_result.cycles,
        "tcdm_requests": cluster_result.tcdm_requests,
        "tcdm_conflicts": cluster_result.tcdm_conflicts,
        "icache_hits": cluster_result.icache_hits,
        "icache_misses": cluster_result.icache_misses,
        "dma_bytes": cluster_result.dma_bytes,
        "dma_busy_cycles": cluster_result.dma_busy_cycles,
        "cores": [
            {
                "hart_id": core.hart_id,
                "cycles": core.cycles,
                "int_retired": core.int_retired,
                "fp_issued": core.fp_issued,
                "fp_compute": core.fp_compute,
                "flops": core.flops,
                "stalls": core.stalls,
                "fpu_stalls": core.fpu_stalls,
            }
            for core in cluster_result.cores
        ],
    }


#: Machines beyond the paper cluster with recorded goldens, and the kernel
#: subset they were recorded for (all Table-1 kernels would triple the suite's
#: runtime for little extra signal; the subset spans 2D/3D/indirect-heavy).
MACHINE_GOLDEN_KERNELS = ("jacobi_2d", "j2d5pt", "box3d1r", "ac_iso_cd")
MACHINE_GOLDEN_MACHINES = ("snitch-4", "snitch-16")


def test_golden_file_covers_table1():
    expected = {f"{name}/{variant}"
                for name in TABLE1_KERNELS
                for variant in ("base", "saris")}
    expected |= {f"{machine}:{name}/{variant}"
                 for machine in MACHINE_GOLDEN_MACHINES
                 for name in MACHINE_GOLDEN_KERNELS
                 for variant in ("base", "saris")}
    assert set(GOLDEN) == expected


@pytest.mark.parametrize("variant", ["base", "saris"])
@pytest.mark.parametrize("name", sorted(TABLE1_KERNELS))
def test_bit_identical_to_seed_simulator(name, variant):
    result = run_kernel(name, variant=variant)
    assert result.correct
    got = _snapshot(result.cluster)
    expected = GOLDEN[f"{name}/{variant}"]
    # Compare piecewise for a readable failure before the full comparison.
    assert got["cycles"] == expected["cycles"], "total cycle count drifted"
    assert got["tcdm_conflicts"] == expected["tcdm_conflicts"], \
        "TCDM conflict statistics drifted"
    assert got["tcdm_requests"] == expected["tcdm_requests"], \
        "TCDM request statistics drifted"
    for got_core, exp_core in zip(got["cores"], expected["cores"]):
        assert got_core["stalls"] == exp_core["stalls"], \
            f"hart {exp_core['hart_id']}: integer stall breakdown drifted"
        assert got_core["fpu_stalls"] == exp_core["fpu_stalls"], \
            f"hart {exp_core['hart_id']}: FPU stall breakdown drifted"
    assert got == expected


@pytest.mark.parametrize("variant", ["base", "saris"])
@pytest.mark.parametrize("name", MACHINE_GOLDEN_KERNELS)
@pytest.mark.parametrize("machine", MACHINE_GOLDEN_MACHINES)
def test_bit_identical_on_registered_machines(machine, name, variant):
    """The engine is golden-verified on non-paper presets too (snitch-4/16)."""
    result = run_kernel(name, variant=variant, machine=machine)
    assert result.correct
    got = _snapshot(result.cluster)
    expected = GOLDEN[f"{machine}:{name}/{variant}"]
    assert got["cycles"] == expected["cycles"], "total cycle count drifted"
    assert got == expected
