"""Native symmetry-folded engine: bit-identity with the Python reference.

The golden-cycle suite already pins the default engine (native, when a C
compiler is available) against recorded numbers; these tests additionally
diff the *full observable state* — registers, memory, stall attribution,
stream statistics, icache bookkeeping — between the two engines on the same
workloads, and exercise the fallback / error paths.
"""

import numpy as np
import pytest

from repro.isa.assembler import assemble
from repro.runner import run_kernel
from repro.snitch import native
from repro.snitch.cluster import ClusterError, SnitchCluster
from repro.snitch.params import TimingParams

pytestmark = pytest.mark.skipif(
    not native.available(),
    reason=f"native engine unavailable: {native.disabled_reason()}")


def _cluster_state(cluster):
    """Every piece of state the Python engine leaves behind after a run."""
    state = {
        "cycle": cluster.cycle,
        "tcdm": (cluster.tcdm.total_requests, cluster.tcdm.granted_requests,
                 cluster.tcdm.conflicts),
        "icache": (cluster.icache.hits, cluster.icache.misses,
                   tuple(cluster.icache._lines.keys())),
        "mem": bytes(cluster.tcdm._data),
    }
    for core in cluster.cores:
        stats = core.fpu.stats
        state[core.hart_id] = {
            "pc": core.pc,
            "finished": core.finished,
            "finish_cycle": core.finish_cycle,
            "int_retired": core.int_retired,
            "stalls": core.stalls.as_dict(),
            "iregs": tuple(core.int_regs._regs),
            "fregs": tuple(core.fp_regs._regs),
            "scoreboard": tuple(core.fpu._scoreboard),
            "fpu": (stats.issued_compute, stats.issued_mem, stats.issued_move,
                    stats.flops, stats.stall_ssr_read, stats.stall_ssr_write,
                    stats.stall_raw, stats.stall_mem, stats.idle_empty),
            "ssr": core.ssr.enabled,
            "movers": tuple(
                (m.cfg.write, m.cfg.indirect, m.elements_streamed,
                 m.data_requests, m.index_requests, m.denied_requests,
                 tuple(m._fifo))
                for m in core.ssr.movers),
        }
    return state


def _run_both(source_per_core, setup=None, params=None, max_cycles=100_000):
    """Run the same program(s) under both engines; return both states."""
    states = []
    for force_python in (False, True):
        cluster = SnitchCluster(params or TimingParams())
        programs = [assemble(src, name=f"p{i}")
                    for i, src in enumerate(source_per_core)]
        cluster.load_programs(programs)
        if setup:
            setup(cluster)
        if force_python:
            with native.forced_python():
                cluster.run(max_cycles=max_cycles)
        else:
            cluster.run(max_cycles=max_cycles)
        states.append(_cluster_state(cluster))
    return states


class TestCrossEngineIdentity:
    @pytest.mark.parametrize("kernel,variant", [
        ("jacobi_2d", "saris"), ("jacobi_2d", "base"),
        ("ac_iso_cd", "saris"), ("box3d1r", "base"),
    ])
    def test_kernel_metrics_identical(self, kernel, variant):
        tile = {"jacobi_2d": (12, 12), "ac_iso_cd": (12, 12, 12),
                "box3d1r": (8, 8, 8)}[kernel]
        native_result = run_kernel(kernel, variant=variant, tile_shape=tile)
        with native.forced_python():
            python_result = run_kernel(kernel, variant=variant,
                                       tile_shape=tile)
        assert native_result.cycles == python_result.cycles
        assert native_result.total_flops == python_result.total_flops
        assert native_result.fpu_util == python_result.fpu_util
        assert native_result.ipc == python_result.ipc
        assert native_result.tcdm_conflict_rate == \
            python_result.tcdm_conflict_rate
        assert native_result.activity == python_result.activity
        native_cores = [c.__dict__ for c in native_result.cluster.cores]
        python_cores = [c.__dict__ for c in python_result.cluster.cores]
        assert native_cores == python_cores

    def test_integer_torture_program_identical(self):
        source = """
            csrr a0, mhartid
            li   t0, -7
            li   t1, 3
            div  t2, t0, t1
            rem  t3, t0, t1
            mulh t4, t0, t0
            slli t5, t1, 4
            sw   t2, 0(a1)
            lw   t6, 0(a1)
            addi a0, a0, 1
        loop:
            addi a0, a0, -1
            bne  a0, zero, loop
            jal  ra, done
            nop
        done:
            sltu s2, t0, t1
        """
        def setup(cluster):
            for core in cluster.cores:
                core.set_reg("a1", cluster.tcdm.base + 8 * core.hart_id)
        got, expected = _run_both([source] * 4, setup=setup)
        assert got == expected

    def test_fp_and_frep_program_identical(self):
        source = """
            li t0, 5
            fld ft3, 0(a1)
            fld ft4, 8(a1)
            frep.o t0, 3
            fmadd.d ft5, ft3, ft4, ft5
            fmax.d ft6, ft5, ft4
            fsgnjn.d ft7, ft6, ft3
            fsd ft5, 16(a1)
            fsd ft7, 24(a1)
            fcvt.d.w ft8, t0
            fsd ft8, 32(a1)
        """
        def setup(cluster):
            cluster.tcdm.write_f64(cluster.tcdm.base, -1.5)
            cluster.tcdm.write_f64(cluster.tcdm.base + 8, 0.25)
            for core in cluster.cores:
                core.set_reg("a1", cluster.tcdm.base)
        got, expected = _run_both([source] * 2, setup=setup)
        assert got == expected

    def test_ssr_stream_program_identical(self):
        # Affine read stream through DM2 feeding an FREP accumulation.
        source = """
            li t0, 16
            li t1, 8
            ssr.cfg.dims 2, 1
            ssr.cfg.bound 2, 0, t0
            ssr.cfg.stride 2, 0, t1
            ssr.cfg.base 2, a1
            ssr.cfg.write 2, 0
            ssr.enable
            ssr.start 2
            frep.o t0, 1
            fadd.d ft4, ft4, ft2
            ssr.barrier
            ssr.disable
            fsd ft4, 256(a1)
        """
        def setup(cluster):
            data = np.arange(16, dtype=np.float64)
            cluster.tcdm.write_f64_array(cluster.tcdm.base, data)
            for core in cluster.cores:
                core.set_reg("a1", cluster.tcdm.base)
        got, expected = _run_both([source] * 3, setup=setup)
        assert got == expected

    def test_machine_presets_identical(self):
        for machine in ("snitch-4", "snitch-16"):
            native_result = run_kernel("jacobi_2d", variant="saris",
                                       tile_shape=(12, 12), machine=machine)
            with native.forced_python():
                python_result = run_kernel("jacobi_2d", variant="saris",
                                           tile_shape=(12, 12),
                                           machine=machine)
            assert native_result.cycles == python_result.cycles
            assert native_result.activity == python_result.activity


class TestDmaNative:
    """The ABI-2 DMA port: queued transfers keep the fold, bit-identically."""

    COUNT_SRC = """
        li x5, 0
        li x6, 80
    loop:
        addi x5, x5, 1
        blt x5, x6, loop
    """

    @staticmethod
    def _dma_state(cluster):
        dma = cluster.dma
        return (cluster.cycle, dma.bytes_moved, dma.busy_cycles,
                dma.transfers_completed, dma._remaining_cycles,
                len(dma._queue), bytes(cluster.tcdm._data),
                bytes(cluster.main_memory._data))

    def _run_both(self, setup, max_cycles=100_000, wait_for_dma=True):
        from repro.snitch.dma import DmaTransfer  # noqa: F401 (setup helper)

        states = []
        for force_python in (False, True):
            cluster = SnitchCluster(TimingParams())
            cluster.load_programs([assemble(self.COUNT_SRC, name="p0")])
            setup(cluster)
            if force_python:
                with native.forced_python():
                    cluster.run(max_cycles=max_cycles,
                                wait_for_dma=wait_for_dma)
            else:
                before = dict(native.run_stats)
                cluster.run(max_cycles=max_cycles, wait_for_dma=wait_for_dma)
                assert native.run_stats["native"] == before["native"] + 1, \
                    "queued DMA work must keep the native fold"
            states.append(self._dma_state(cluster))
        return states

    def test_strided_transfers_bit_identical(self):
        from repro.snitch.dma import DmaTransfer

        def setup(cluster):
            base = cluster.alloc_f64(1024)
            cluster.tcdm.write_f64_array(
                base, np.arange(1024, dtype=np.float64))
            main = cluster.alloc_main(16384)
            cluster.dma.enqueue(DmaTransfer(
                src=base, dst=main, inner_bytes=256, outer_reps=8,
                src_stride=512, dst_stride=256))
            cluster.dma.enqueue(DmaTransfer(
                src=main, dst=base + 4096, inner_bytes=2048))
            cluster.dma.enqueue(DmaTransfer(
                src=base, dst=base + 2048, inner_bytes=64, outer_reps=4,
                src_stride=128, dst_stride=64, plane_reps=2,
                src_plane_stride=512, dst_plane_stride=256))

        native_state, python_state = self._run_both(setup)
        assert native_state == python_state

    def test_dma_outlasting_cores_drains_identically(self):
        from repro.snitch.dma import DmaTransfer

        def setup(cluster):
            main = cluster.alloc_main(1 << 20)
            base = cluster.alloc_f64(4096)
            # Far more DMA work than the 80-iteration loop: the engine
            # drains after every core has finished (wait_for_dma).
            for row in range(16):
                cluster.dma.enqueue(DmaTransfer(
                    src=base, dst=main + row * 32768, inner_bytes=32768))

        native_state, python_state = self._run_both(setup)
        assert native_state == python_state
        assert native_state[3] == 16  # all transfers completed

    def test_no_wait_leaves_queue_identically(self):
        from repro.snitch.dma import DmaTransfer

        def setup(cluster):
            main = cluster.alloc_main(1 << 20)
            base = cluster.alloc_f64(4096)
            for row in range(16):
                cluster.dma.enqueue(DmaTransfer(
                    src=base, dst=main + row * 32768, inner_bytes=32768))

        native_state, python_state = self._run_both(setup, wait_for_dma=False)
        assert native_state == python_state
        assert native_state[5] > 0  # transfers still queued on exit

    def test_out_of_region_transfer_falls_back(self):
        from repro.snitch.dma import DmaError, DmaTransfer

        cluster = SnitchCluster(TimingParams())
        cluster.load_programs([assemble(self.COUNT_SRC)])
        cluster.dma.enqueue(DmaTransfer(src=0x100, dst=0x200, inner_bytes=8))
        assert not native._dma_eligible(cluster)
        with pytest.raises(DmaError):
            cluster.run()


class TestNativeBehaviour:
    def test_deadlock_raises_cluster_error(self):
        cluster = SnitchCluster()
        cluster.load_programs([assemble("loop:\n  j loop\n")])
        with pytest.raises(ClusterError):
            cluster.run(max_cycles=200)

    def test_icache_pressure_falls_back_to_python(self, monkeypatch):
        # A cluster whose programs cannot all stay resident needs the LRU
        # model, which only the Python engine implements.
        params = TimingParams(icache_lines=2, icache_line_insts=4)
        cluster = SnitchCluster(params)
        body = "\n".join("addi t0, t0, 1" for _ in range(40))
        cluster.load_programs([assemble(body)])
        calls = {"native": 0}
        real_execute = native.execute

        def counting_execute(*args, **kwargs):
            result = real_execute(*args, **kwargs)
            calls["native"] += 1 if result is not None else 0
            return result

        monkeypatch.setattr(native, "execute", counting_execute)
        monkeypatch.setattr("repro.snitch.cluster._native.execute",
                            counting_execute)
        result = cluster.run()
        assert calls["native"] == 0  # fell back
        assert cluster.cores[0].int_regs.read(5) == 40
        assert result.icache_misses > 2

    def test_forced_python_context(self):
        with native.forced_python():
            cluster = SnitchCluster()
            cluster.load_programs([assemble("li t0, 1")])
            assert native.execute(cluster, 100) is None
        # outside the context the same cluster is eligible again
        cluster2 = SnitchCluster()
        cluster2.load_programs([assemble("li t0, 1")])
        assert native.execute(cluster2, 100) is not None

    def test_decode_rejects_oversized_frep(self):
        params = TimingParams(frep_max_insts=2)
        body = "fadd.d ft3, ft3, ft4\n" * 3
        program = assemble(f"li t0, 3\nfrep.o t0, 3\n{body}")
        assert native.decode_program(program, params) is None

    def test_decode_cache_keys_on_fpu_latencies(self):
        # The decoded table bakes FPU latencies in; one Program object
        # simulated under different TimingParams must decode per config.
        program = assemble("fadd.d ft3, ft4, ft5\nfld ft6, 0(a1)")
        fast = native.decode_program(program, TimingParams(fpu_latency=2))
        slow = native.decode_program(program, TimingParams(fpu_latency=9))
        assert fast[0][9] == 2 and slow[0][9] == 9
        results = []
        for latency in (2, 9):
            params = TimingParams(fpu_latency=latency)
            source = "\n".join(["fmadd.d fa0, fa1, fa2, fa0"] * 6)
            cluster = SnitchCluster(params)
            prog = assemble(source)
            cluster.load_programs([prog])
            native_cycles = cluster.run().cycles
            cluster = SnitchCluster(params)
            cluster.load_programs([prog])  # SAME Program object, new params
            with native.forced_python():
                python_cycles = cluster.run().cycles
            assert native_cycles == python_cycles
            results.append(native_cycles)
        assert results[1] > results[0]  # the RAW chain feels the latency

    def test_registers_and_memory_after_native_run(self):
        # The canonical seed test path, now through the native engine.
        cluster = SnitchCluster()
        program = assemble("""
            li   t0, 21
            li   t1, 2
            mul  t2, t0, t1
            sw   t2, 0(a1)
        """)
        cluster.load_programs([program])
        cluster.cores[0].set_reg("a1", cluster.tcdm.base)
        cluster.run()
        assert cluster.tcdm.read_i32(cluster.tcdm.base) == 42
        assert cluster.cores[0].int_regs.read(7) == 42
