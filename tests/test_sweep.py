"""Tests for the sweep engine: job hashing, the result store and fan-out."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.energy import estimate_power
from repro.scaleout import estimate_scaleout_pair
from repro.core.kernels import get_kernel
from repro.sweep import (
    ENGINE_VERSION,
    ResultStore,
    SweepJob,
    execute_job,
    resolve_workers,
    run_jobs,
    run_sweep,
)
from repro.sweep.artifacts import ablation_jobs, paper_jobs
from tests.conftest import small_tile

REPO_ROOT = Path(__file__).resolve().parent.parent


def metrics_key(result):
    """Every serializable metric of a result (the bit-identity surface)."""
    return (result.kernel, result.variant, result.tile_shape, result.cycles,
            result.total_flops, result.fpu_util, result.ipc,
            result.flops_per_cycle, result.correct, result.max_abs_error,
            result.runtime_imbalance, result.tcdm_conflict_rate,
            result.dma_utilization, result.tile_traffic_bytes,
            result.activity)


def small_job(kernel="jacobi_2d", variant="saris", **kwargs):
    return SweepJob.make(kernel, variant, tile_shape=small_tile(kernel),
                         **kwargs)


class TestSweepJobHash:
    def test_kwarg_order_is_irrelevant(self):
        a = SweepJob.make("jacobi_2d", "saris", max_block=4, use_frep=True)
        b = SweepJob.make("jacobi_2d", "saris", use_frep=True, max_block=4)
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_distinct_configs_get_distinct_hashes(self):
        hashes = {job.content_hash()
                  for job in paper_jobs() + list(ablation_jobs().values())}
        jobs = paper_jobs() + list(ablation_jobs().values())
        # frep_on duplicates the paper jacobi_2d/saris job by construction.
        assert len(hashes) == len(jobs) - 1

    def test_tile_shape_is_normalized(self):
        a = SweepJob.make("jacobi_2d", tile_shape=[12, 12])
        b = SweepJob.make("jacobi_2d", tile_shape=(12, 12))
        assert a == b and a.tile_shape == (12, 12)

    def test_seed_and_params_affect_hash(self):
        from repro.snitch.params import TimingParams

        base = SweepJob.make("jacobi_2d")
        assert SweepJob.make("jacobi_2d", seed=1).content_hash() != base.content_hash()
        custom = SweepJob.make("jacobi_2d",
                               params=TimingParams(fpu_latency=4))
        assert custom.content_hash() != base.content_hash()

    def test_hash_stable_across_processes(self):
        """Hashes must not depend on PYTHONHASHSEED or process state."""
        jobs = [SweepJob.make("jacobi_2d", "base"),
                SweepJob.make("star3d7pt", "saris", tile_shape=(8, 8, 8),
                              force_store_streamed=False, seed=3)]
        expected = [job.content_hash() for job in jobs]
        code = (
            "from repro.sweep import SweepJob\n"
            "jobs = [SweepJob.make('jacobi_2d', 'base'),\n"
            "        SweepJob.make('star3d7pt', 'saris', tile_shape=(8, 8, 8),\n"
            "                      force_store_streamed=False, seed=3)]\n"
            "print('\\n'.join(job.content_hash() for job in jobs))\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "271828"
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.split() == expected


class TestResultStore:
    def test_roundtrip_preserves_metrics(self, tmp_path):
        store = ResultStore(tmp_path)
        job = small_job()
        result = execute_job(job)
        path = store.save(job, result)
        assert path.exists() and len(store) == 1
        loaded = store.load(job)
        assert loaded is not None
        assert metrics_key(loaded) == metrics_key(result)
        assert loaded.cluster is None
        info = loaded.program_info[0]
        assert info["variant"] == "saris" and "stream_balance" in info
        # Entries are stamped with version + simulator-source fingerprint.
        from repro.sweep.store import engine_fingerprint
        assert store.version_dir.name == (
            f"v{ENGINE_VERSION}-{engine_fingerprint()}")

    def test_miss_for_unknown_job(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load(small_job()) is None

    def test_engine_version_bump_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)
        job = small_job()
        store.save(job, execute_job(job))
        assert store.load(job) is not None
        bumped = ResultStore(tmp_path, engine_version=ENGINE_VERSION + 1)
        assert bumped.load(job) is None
        # The old version's entries survive untouched for rollback.
        assert store.load(job) is not None

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = small_job()
        store.save(job, execute_job(job))
        store.path_for(job).write_text("{not json")
        assert store.load(job) is None

    def test_spec_mismatch_degrades_to_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = small_job()
        store.save(job, execute_job(job))
        payload = json.loads(store.path_for(job).read_text())
        payload["job"]["seed"] = 99
        store.path_for(job).write_text(json.dumps(payload))
        assert store.load(job) is None

    def test_clear_drops_version_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        job = small_job()
        store.save(job, execute_job(job))
        store.clear()
        assert len(store) == 0 and store.load(job) is None

    def test_concurrent_writers_one_key_never_corrupt(self, tmp_path):
        """Two threads hammering the same key must never produce a torn
        entry: every interleaved load is either a miss or a full,
        spec-matching result (the daemon's worker threads share one store)."""
        import threading

        job = small_job()
        result = execute_job(job)
        errors = []

        def hammer():
            store = ResultStore(tmp_path)  # own instance, same directory
            try:
                for _ in range(50):
                    store.save(job, result)
                    loaded = store.load(job)
                    if loaded is not None:
                        assert metrics_key(loaded) == metrics_key(result)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        store = ResultStore(tmp_path)
        loaded = store.load(job)
        assert loaded is not None
        assert metrics_key(loaded) == metrics_key(result)
        # No quarantined (corrupt) entries and no leaked tmp files.
        assert store.stats()["corrupt_files"] == 0
        assert not list(store.version_dir.glob("*.tmp*"))

    def test_multiprocess_publish_contention_never_corrupts(self, tmp_path):
        """The cross-*process* version of the hammer: fabric workers on one
        host share a store directory, so the flock/atomic-rename publish
        path must hold up across processes, not just threads."""
        job = small_job()
        result = execute_job(job)
        store = ResultStore(tmp_path)
        store.save(job, result)  # seed the payload the children republish
        child = (
            "import sys\n"
            "from repro.sweep import ResultStore, SweepJob\n"
            "store = ResultStore(sys.argv[1])\n"
            "job = SweepJob.make('jacobi_2d', 'saris',\n"
            "                    tile_shape=(int(sys.argv[2]),\n"
            "                                int(sys.argv[3])))\n"
            "result = store.load(job)\n"
            "assert result is not None, 'seed entry must be readable'\n"
            "want = result.metrics_hash()\n"
            "for _ in range(40):\n"
            "    store.save(job, result)\n"
            "    loaded = store.load(job)\n"
            "    assert loaded is not None, 'published entry went missing'\n"
            "    assert loaded.metrics_hash() == want, 'torn entry'\n"
        )
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        procs = [subprocess.Popen(
            [sys.executable, "-c", child, str(tmp_path),
             str(job.tile_shape[0]), str(job.tile_shape[1])],
            cwd=str(REPO_ROOT), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
            for _ in range(3)]
        outputs = [proc.communicate(timeout=120)[0].decode("utf-8",
                                                           "replace")
                   for proc in procs]
        assert all(proc.returncode == 0 for proc in procs), outputs
        # The surviving entry is whole and spec-matching, with no leaks.
        fresh = ResultStore(tmp_path)
        loaded = fresh.load(job)
        assert loaded is not None
        assert metrics_key(loaded) == metrics_key(result)
        assert fresh.stats()["corrupt_files"] == 0
        assert not list(fresh.version_dir.glob("*.tmp*"))


class TestMachineAwareStore:
    """Cached results are keyed by machine: no cross-machine stale serving."""

    def test_distinct_machines_distinct_hashes_and_paths(self, tmp_path):
        store = ResultStore(tmp_path)
        wide = small_job(machine="snitch-8-wide")
        on4 = small_job(machine="snitch-4")
        assert wide.content_hash() != on4.content_hash()
        assert store.path_for(wide) != store.path_for(on4)
        assert "snitch-8-wide" in store.path_for(wide).name
        assert "snitch-4" in store.path_for(on4).name

    def test_default_machine_canonicalized_for_hash_and_path(self, tmp_path):
        """Explicitly requesting the stock preset (under any name) shares the
        machine-unset job's content hash and store entry, while the job still
        remembers which machine object was requested."""
        store = ResultStore(tmp_path)
        unset = small_job()
        explicit = small_job(machine="snitch-8")
        assert explicit.machine is not None  # name preserved for records
        assert explicit.machine.name == "snitch-8"
        assert explicit.content_hash() == unset.content_hash()
        assert store.path_for(explicit) == store.path_for(unset)

    def test_result_cached_for_one_machine_misses_for_another(self, tmp_path):
        store = ResultStore(tmp_path)
        on8 = small_job(machine="snitch-8")
        on4 = small_job(machine="snitch-4")
        store.save(on8, execute_job(on8))
        assert store.load(on8) is not None
        assert store.load(on4) is None

    def test_preset_parameter_change_misses_cache(self, tmp_path):
        from repro.machine import MachineSpec

        store = ResultStore(tmp_path)
        stock = small_job(machine="snitch-8")
        store.save(stock, execute_job(stock))
        tweaked_banks = small_job(machine=MachineSpec.create(
            "snitch-8", tcdm_banks=64))
        tweaked_timing = small_job(machine=MachineSpec.create(
            "snitch-8", fpu_latency=4))
        assert stock.content_hash() != tweaked_banks.content_hash()
        assert stock.content_hash() != tweaked_timing.content_hash()
        assert store.load(tweaked_banks) is None
        assert store.load(tweaked_timing) is None
        assert store.load(stock) is not None

    def test_machine_jobs_roundtrip_through_store(self, tmp_path):
        store = ResultStore(tmp_path)
        job = small_job(machine="snitch-4")
        result = execute_job(job)
        store.save(job, result)
        loaded = store.load(job)
        assert loaded is not None and metrics_key(loaded) == metrics_key(result)
        assert loaded.activity.num_cores == 4

    def test_replaced_default_preset_cannot_serve_stale_entries(self):
        """Replacing the snitch-8 preset changes what machine-unset jobs run
        on, so their content hash must change with it (the canonical form is
        pinned to the frozen paper parameters, not the live registry)."""
        from repro.machine import MachineSpec, get_machine, register_machine

        baseline = small_job().content_hash()
        original = get_machine("snitch-8")
        register_machine(MachineSpec.create("snitch-8", tcdm_banks=64),
                         replace=True)
        try:
            assert small_job().content_hash() != baseline
        finally:
            register_machine(original, replace=True)
        assert small_job().content_hash() == baseline

    def test_machine_label_and_spec(self):
        job = small_job(machine="snitch-16")
        assert "@snitch-16" in job.label
        assert job.spec()["machine"]["num_cores"] == 16
        assert small_job().spec()["machine"] is None


class TestResultJsonRoundTrip:
    def test_roundtrip_is_equal_including_tuples(self):
        """to_json_dict -> JSON -> from_json_dict is the identity on the
        serializable core (tuple-ness preserved where it matters)."""
        result = execute_job(small_job())
        payload = json.loads(json.dumps(result.to_json_dict()))
        restored = type(result).from_json_dict(payload)
        assert restored == result
        assert isinstance(restored.tile_shape, tuple)
        assert restored.tile_shape == result.tile_shape
        assert isinstance(restored.activity.core_cycles, tuple)
        assert restored.program_info == result.program_info

    def test_program_info_normalized_at_construction(self):
        """In-memory results already hold JSON-safe program_info, so fresh
        and store-loaded results compare equal field by field."""
        result = execute_job(small_job())
        info = result.program_info[0]
        for value in info.values():
            assert not isinstance(value, tuple)
        # Dict keys are strings exactly as JSON would store them.
        assert all(isinstance(key, str) for key in info["stream_lengths"])


class TestEngine:
    def test_parallel_matches_serial_full_table1(self):
        """The acceptance gate: every Table-1 kernel/variant, paper tiles."""
        jobs = paper_jobs()
        serial = run_sweep(jobs, workers=1, store=None)
        parallel = run_sweep(jobs, workers=2, store=None)
        assert not serial.parallel and parallel.parallel
        assert serial.executed == parallel.executed == len(jobs)
        for ser, par in zip(serial.results, parallel.results):
            assert metrics_key(ser) == metrics_key(par)
            assert ser.program_info == par.program_info

    def test_results_keep_input_order(self, tmp_path):
        jobs = [small_job("jacobi_2d", v) for v in ("base", "saris")]
        results = run_jobs(jobs, workers=2, store=None)
        assert [(r.kernel, r.variant) for r in results] == [
            ("jacobi_2d", "base"), ("jacobi_2d", "saris")]

    def test_cache_hits_skip_execution(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = [small_job("jacobi_2d", v) for v in ("base", "saris")]
        cold = run_sweep(jobs, workers=1, store=store)
        assert cold.executed == 2 and cold.cache_hits == 0
        warm = run_sweep(jobs, workers=1, store=store)
        assert warm.executed == 0 and warm.cache_hits == 2
        for a, b in zip(cold.results, warm.results):
            assert metrics_key(a) == metrics_key(b)

    def test_duplicate_jobs_simulated_once(self):
        job = small_job()
        report = run_sweep([job, job, job], workers=1, store=None)
        assert report.jobs == 3 and report.executed == 1
        assert (metrics_key(report.results[0]) == metrics_key(report.results[1])
                == metrics_key(report.results[2]))

    def test_progress_streams_every_job(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = [small_job("jacobi_2d", v) for v in ("base", "saris")]
        run_sweep(jobs, workers=1, store=store)
        events = []
        run_sweep(jobs, workers=1, store=store,
                  progress=lambda done, total, job, source:
                  events.append((done, total, source)))
        assert events == [(1, 2, "cache"), (2, 2, "cache")]

    def test_sweep_results_feed_energy_and_scaleout_models(self):
        """Serialized cores (no cluster detail) still drive Fig 4 and Fig 5."""
        jobs = [small_job("jacobi_2d", v) for v in ("base", "saris")]
        base, saris = run_jobs(jobs, workers=1, store=None)
        assert base.cluster is None and base.activity is not None
        assert estimate_power(saris).power_w > estimate_power(base).power_w
        pair = estimate_scaleout_pair(get_kernel("jacobi_2d"), base, saris)
        assert pair["speedup"] > 0

    def test_parallel_batches_jobs_per_task(self):
        """Several jobs ride one pool task; results stay in input order."""
        jobs = [small_job("jacobi_2d", v, seed=s)
                for v in ("base", "saris") for s in range(3)]
        serial = run_sweep(jobs, workers=1, store=None)
        parallel = run_sweep(jobs, workers=2, store=None)
        assert parallel.batch_size >= 1
        assert parallel.stats()["batch_size"] == parallel.batch_size
        for ser, par in zip(serial.results, parallel.results):
            assert metrics_key(ser) == metrics_key(par)

    def test_parallel_effective_reflects_cpu_count(self):
        jobs = [small_job("jacobi_2d", v) for v in ("base", "saris")]
        report = run_sweep(jobs, workers=2, store=None)
        assert report.parallel
        assert report.cpu_count == (os.cpu_count() or 1)
        assert report.parallel_effective == (report.cpu_count > 1)
        assert report.stats()["parallel_effective"] == report.parallel_effective
        serial = run_sweep(jobs, workers=1, store=None)
        assert not serial.parallel_effective


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "5")
        assert resolve_workers() == 5

    def test_malformed_env_var_names_itself(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "abc")
        with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS"):
            resolve_workers()

    def test_clamped_to_job_count_and_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert resolve_workers(16, num_jobs=3) == 3
        assert resolve_workers(0) == 1
