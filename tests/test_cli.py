"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "jacobi_2d" in out and "j3d27pt" in out

    def test_run_command_small_tile(self, capsys):
        code = main(["run", "jacobi_2d", "--variant", "saris",
                     "--tile", "12", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fpu_util" in out

    def test_compare_command(self, capsys):
        code = main(["compare", "jacobi_2d", "--tile", "12", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not_a_kernel"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
