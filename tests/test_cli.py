"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "jacobi_2d" in out and "j3d27pt" in out
        # The listing now covers all three registries.
        assert "radius" in out and "points" in out
        assert "saris" in out and "base" in out
        assert "snitch-8" in out and "snitch-16" in out

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload["variants"]} >= {"base",
                                                                    "saris"}
        assert any(m["name"] == "snitch-4" for m in payload["machines"])
        jacobi = next(k for k in payload["kernels"]
                      if k["name"] == "jacobi_2d")
        # Machine-readable means typed values, not display strings.
        assert jacobi["dims"] == 2 and jacobi["default_tile"] == [64, 64]

    def test_machines_command(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "snitch-8" in out and "snitch-4" in out and "4x2" in out
        assert main(["machines", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["name"] for m in payload][0] == "snitch-8"
        wide = next(m for m in payload if m["name"] == "snitch-8-wide")
        # Typed values for scripting, not display strings.
        assert wide["num_cores"] == 8 and wide["tcdm_banks"] == 64
        assert wide["tcdm_size"] == 256 * 1024 and wide["clock_ghz"] == 1.0

    def test_run_json_and_machine_flag(self, capsys):
        code = main(["run", "jacobi_2d", "--tile", "12", "12",
                     "--machine", "snitch-4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "snitch-4"
        assert payload["correct"] is True and payload["cycles"] > 0

    def test_compare_json(self, capsys):
        code = main(["compare", "jacobi_2d", "--tile", "12", "12", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "snitch-8"
        assert payload["speedup"] > 0
        assert payload["base"]["cycles"] > payload["saris"]["cycles"]

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "jacobi_2d", "--machine", "cray-1"])

    def test_run_command_small_tile(self, capsys):
        code = main(["run", "jacobi_2d", "--variant", "saris",
                     "--tile", "12", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fpu_util" in out

    def test_compare_command(self, capsys):
        code = main(["compare", "jacobi_2d", "--tile", "12", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not_a_kernel"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_machines_json_reports_topology(self, capsys):
        assert main(["machines", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        m2 = next(m for m in payload if m["name"] == "manticore-2")
        assert m2["groups"] == 1 and m2["clusters_per_group"] == 2
        assert m2["hbm_device_gbs"] == 51.2
        assert m2["peak_gflops"] == 32.0  # system peak: two clusters


class TestScaleoutCommand:
    def test_analytical_default_is_manticore_32(self, capsys):
        assert main(["scaleout", "star3d2r"]) == 0
        out = capsys.readouterr().out
        assert "manticore-32" in out and "8x4 clusters" in out
        assert "analytical" in out

    def test_analytical_json_with_machine_and_config(self, capsys):
        code = main(["scaleout", "jacobi_2d", "--machine", "manticore-8",
                     "--config", "groups=4", "--config", "hbm=25.6", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "analytical"
        assert payload["groups"] == 4 and payload["hbm_device_gbs"] == 25.6
        assert payload["speedup"] > 0 and 0 < payload["fpu_util"] <= 1

    def test_direct_json(self, capsys):
        code = main(["scaleout", "jacobi_2d", "--direct", "--tiles", "2",
                     "--workers", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "direct"
        assert payload["machine"] == "manticore-2"
        assert payload["granularity"] == "epoch"
        assert payload["tiles_per_cluster"] == 2
        assert len(payload["per_cluster"]) == 2
        assert payload["speedup"] > 1.0
        assert "speedup" in payload["analytical"]

    def test_direct_text_report(self, capsys):
        code = main(["scaleout", "jacobi_2d", "--direct", "--tiles", "2",
                     "--workers", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "direct simulation" in out
        assert "epoch-granular" in out
        assert "analytical speedup (cross-check)" in out

    def test_bad_config_key_rejected(self, capsys):
        assert main(["scaleout", "jacobi_2d", "--config", "warp=9"]) == 2
        assert "--config expects KEY=VALUE" in capsys.readouterr().err

    def test_bad_config_value_rejected(self, capsys):
        assert main(["scaleout", "jacobi_2d", "--config", "groups=many"]) == 2
        assert "invalid value" in capsys.readouterr().err

    def test_hbm_override_reaches_single_cluster_analytical_config(self, capsys):
        code = main(["scaleout", "jacobi_2d", "--machine", "snitch-8",
                     "--config", "hbm=1.0", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["hbm_device_gbs"] == 1.0
        assert payload["memory_bound"] is True  # 1 GB/s starves the groups

    def test_direct_rejects_non_positive_tiles(self, capsys):
        assert main(["scaleout", "jacobi_2d", "--direct", "--tiles", "0"]) == 2
        assert "--tiles must be >= 1" in capsys.readouterr().err


class TestReproduceCommand:
    def test_reproduce_listing1(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(["reproduce", "--subset", "listing1",
                     "-o", str(report_path), "-q"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Listing 1" in out
        report = json.loads(report_path.read_text())
        assert report["subset"] == "listing1"
        assert report["sweep"] is None  # static artifact: no simulations
        assert len(report["artifacts"]) == 1

    def test_reproduce_table1_through_engine(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(["reproduce", "--subset", "table1", "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "-o", str(report_path), "-q"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "sweep:" in out
        report = json.loads(report_path.read_text())
        assert report["sweep"]["jobs"] == 20
        assert report["sweep"]["cache_hits"] == 0
        # A warm re-run is served entirely from the store.
        assert main(["reproduce", "--subset", "table1",
                     "--cache-dir", str(tmp_path / "cache"), "-o", "", "-q"]) == 0
        capsys.readouterr()

    def test_reproduce_rejects_unknown_subset(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "--subset", "fig9"])

    def test_reproduce_on_non_default_machine(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(["reproduce", "--subset", "table1",
                     "--machine", "snitch-4",
                     "--cache-dir", str(tmp_path / "cache"),
                     "-o", str(report_path), "-q"])
        assert code == 0
        out = capsys.readouterr().out
        assert "machine: snitch-4" in out
        report = json.loads(report_path.read_text())
        assert report["machine"] == "snitch-4"
        assert report["sweep"]["jobs"] == 20
        # The snitch-4 results were cached under machine-aware keys: a
        # default-machine run of the same subset must not hit them.
        code = main(["reproduce", "--subset", "table1",
                     "--cache-dir", str(tmp_path / "cache"), "-o", "", "-q"])
        assert code == 0
        out = capsys.readouterr().out
        assert "20 executed, 0 cache hits" in out


class TestDoctorCommand:
    def test_text_report(self, capsys):
        from repro.snitch import native
        code = main(["doctor"])
        out = capsys.readouterr().out
        assert "repro environment diagnostics" in out
        assert "native engine" in out
        assert code == (0 if native.available() else 1)

    def test_json_report(self, capsys, tmp_path):
        code = main(["doctor", "--json", "--cache-dir", str(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["native"]["abi_version"] >= 1
        assert payload["store"]["root"] == str(tmp_path)
        assert payload["store"]["entries"] == 0
        assert code in (0, 1)


class TestFuzzCommand:
    def test_small_clean_run(self, capsys, tmp_path):
        from repro.snitch import native
        if not native.available():
            pytest.skip("native engine unavailable")
        code = main(["fuzz", "--budget", "3", "--seed", "0",
                     "--corpus-dir", str(tmp_path), "-q"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 cases" in out and "0 divergence" in out
        assert not list(tmp_path.iterdir())  # clean run writes nothing

    def test_json_report(self, capsys, tmp_path):
        from repro.snitch import native
        if not native.available():
            pytest.skip("native engine unavailable")
        code = main(["fuzz", "--budget", "2", "--seed", "1", "--json", "-q",
                     "--corpus-dir", str(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True and payload["cases_run"] == 2

    def test_corrupted_engine_fails_and_writes_corpus(self, capsys,
                                                      tmp_path):
        from repro.snitch import native
        if not native.available():
            pytest.skip("native engine unavailable")
        with native.corrupted():
            code = main(["fuzz", "--budget", "1", "--seed", "0",
                         "--corpus-dir", str(tmp_path), "-q"])
        assert code == 1
        assert list(tmp_path.glob("divergence-*.json"))
        err = capsys.readouterr().err
        assert "divergence" in err

    def test_rejects_bad_budget(self, capsys):
        assert main(["fuzz", "--budget", "0"]) == 2
        assert "--budget" in capsys.readouterr().err


class TestServiceCommands:
    def test_submit_falls_back_to_in_process(self, capsys, monkeypatch,
                                             tmp_path):
        monkeypatch.delenv("REPRO_SERVICE_URL", raising=False)
        code = main(["submit", "jacobi_2d", "--variants", "base",
                     "--tile", "12", "12",
                     "--cache-dir", str(tmp_path), "--json"])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["state"] == "done"
        assert payload["counts"]["done"] == 1

    def test_submit_fallback_announces_itself(self, capsys, monkeypatch,
                                              tmp_path):
        monkeypatch.delenv("REPRO_SERVICE_URL", raising=False)
        code = main(["submit", "jacobi_2d", "--variants", "base",
                     "--tile", "12", "12", "--cache-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "no server configured" in captured.err
        # The in-process path streams the same event lines a server would.
        assert "[  submitted]" in captured.out
        assert "[ sweep_done]" in captured.out

    def test_submit_fallback_hits_warm_cache(self, capsys, monkeypatch,
                                             tmp_path):
        monkeypatch.delenv("REPRO_SERVICE_URL", raising=False)
        args = ["submit", "jacobi_2d", "--variants", "base",
                "--tile", "12", "12", "--cache-dir", str(tmp_path), "--json"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_hits"] == 1

    def test_submit_rejects_unknown_kernel(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_URL", raising=False)
        code = main(["submit", "no_such_kernel", "--no-cache"])
        assert code == 2
        assert "no_such_kernel" in capsys.readouterr().err

    def test_watch_without_server_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_URL", raising=False)
        code = main(["watch", "s0001-deadbeef"])
        assert code == 2
        assert "no server configured" in capsys.readouterr().err

    def test_submit_and_watch_against_live_server(self, capsys, tmp_path):
        from tests.test_service_server import running_server

        with running_server(store=None) as (service, client):
            code = main(["submit", "jacobi_2d", "--variants", "base",
                         "--tile", "12", "12", "--url", service.url,
                         "--watch"])
            out = capsys.readouterr().out
            assert code == 0
            assert "[       done]" in out and "[ sweep_done]" in out
            # Submit without --watch prints the receipt + a watch hint.
            code = main(["submit", "jacobi_2d", "--variants", "base",
                         "--tile", "12", "12", "--url", service.url])
            out = capsys.readouterr().out
            assert code == 0
            assert "1 cache hit(s)" in out and "repro watch" in out
            sweep_id = next(line.split()[1] for line in out.splitlines()
                            if line.startswith("sweep "))
            code = main(["watch", sweep_id.rstrip(":"), "--url",
                         service.url, "--json"])
            payload = json.loads(capsys.readouterr().out)
            assert code == 0 and payload["state"] == "done"

    def test_submit_unreachable_server_is_an_error(self, capsys):
        code = main(["submit", "jacobi_2d", "--tile", "12", "12",
                     "--url", "http://127.0.0.1:1", "--watch"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_watch_failure_exits_1_with_summary(self, capsys):
        """Server path: a failed job makes submit --watch exit 1 with a
        stderr summary (consistent with `repro reproduce`)."""
        from tests.test_service_server import running_server

        def exploding(job, report):
            raise ValueError("injected boom")

        with running_server(runner=exploding) as (service, client):
            code = main(["submit", "jacobi_2d", "--variants", "base",
                         "--tile", "12", "12", "--url", service.url,
                         "--watch"])
            captured = capsys.readouterr()
            assert code == 1
            assert "1 of 1 job(s) failed" in captured.err
            assert "ValueError" in captured.err
            assert "injected boom" in captured.err
            stats = client.stats()  # the daemon itself is still healthy
            assert stats["queue"]["failed"] == 1

    def test_watch_failure_exits_1_with_summary(self, capsys):
        from tests.test_service_server import running_server

        def exploding(job, report):
            raise ValueError("injected boom")

        with running_server(runner=exploding) as (service, client):
            receipt = client.submit(
                {"jobs": [{"kernel": "jacobi_2d", "variant": "base",
                           "tile_shape": [12, 12]}]})
            client.wait(receipt["sweep"])
            code = main(["watch", receipt["sweep"], "--url", service.url])
            captured = capsys.readouterr()
            assert code == 1
            assert "watch: 1 of 1 job(s) failed" in captured.err
            assert "ValueError" in captured.err

    def test_submit_fallback_failure_exits_1_with_summary(
            self, capsys, monkeypatch, tmp_path):
        """In-process fallback path: same exit code and summary contract
        as the server path."""
        monkeypatch.delenv("REPRO_SERVICE_URL", raising=False)
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           "mode=raise:kernel=jacobi_2d")
        code = main(["submit", "jacobi_2d", "--variants", "base",
                     "--tile", "12", "12", "--cache-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "submit: 1 of 1 job(s) failed" in captured.err
        assert "InjectedFault" in captured.err

    def test_worker_without_coordinator_is_an_error(self, capsys,
                                                    monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_URL", raising=False)
        code = main(["worker"])
        assert code == 2
        assert "no coordinator configured" in capsys.readouterr().err

    def test_doctor_probes_fabric_daemon(self, capsys):
        from tests.test_fabric import running_fabric

        with running_fabric() as (service, client):
            code = main(["doctor", "--json", "--url", service.url])
            payload = json.loads(capsys.readouterr().out)
            assert code == 0
            assert payload["service"]["reachable"] is True
            assert payload["service"]["queue"]["dispatch"] == "fabric"
            assert payload["service"]["fabric"]["lease_ttl"] == 5.0
        # Unreachable daemon: reported, not fatal.
        code = main(["doctor", "--json", "--url", "http://127.0.0.1:1"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"]["reachable"] is False
        assert "error" in payload["service"]
