"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "jacobi_2d" in out and "j3d27pt" in out

    def test_run_command_small_tile(self, capsys):
        code = main(["run", "jacobi_2d", "--variant", "saris",
                     "--tile", "12", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fpu_util" in out

    def test_compare_command(self, capsys):
        code = main(["compare", "jacobi_2d", "--tile", "12", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not_a_kernel"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReproduceCommand:
    def test_reproduce_listing1(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(["reproduce", "--subset", "listing1",
                     "-o", str(report_path), "-q"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Listing 1" in out
        report = json.loads(report_path.read_text())
        assert report["subset"] == "listing1"
        assert report["sweep"] is None  # static artifact: no simulations
        assert len(report["artifacts"]) == 1

    def test_reproduce_table1_through_engine(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(["reproduce", "--subset", "table1", "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "-o", str(report_path), "-q"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "sweep:" in out
        report = json.loads(report_path.read_text())
        assert report["sweep"]["jobs"] == 20
        assert report["sweep"]["cache_hits"] == 0
        # A warm re-run is served entirely from the store.
        assert main(["reproduce", "--subset", "table1",
                     "--cache-dir", str(tmp_path / "cache"), "-o", "", "-q"]) == 0
        capsys.readouterr()

    def test_reproduce_rejects_unknown_subset(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "--subset", "fig9"])
