"""RISC-V integer division/remainder and jump-target semantics.

The original model divided through a 64-bit float (``int(ua / ub)``) and left
the ``jalr`` target unmasked; these tests pin the exact-integer RISC-V
behaviour: signed ``div``/``rem`` truncate toward zero, division by zero
yields all-ones / the dividend, the INT_MIN / -1 overflow wraps, and computed
jump targets stay inside the 32-bit address space.
"""

import pytest

from repro.isa.assembler import assemble
from repro.snitch.cluster import SnitchCluster


def run_single(source: str, setup=None, max_cycles: int = 100_000):
    cluster = SnitchCluster()
    cluster.load_programs([assemble(source, name="test")])
    core = cluster.cores[0]
    if setup:
        setup(cluster, core)
    result = cluster.run(max_cycles=max_cycles)
    return cluster, core, result


def run_div(mnemonic: str, a: int, b: int) -> int:
    source = f"""
        {mnemonic} t2, t0, t1
    """
    def setup(cluster, core):
        core.set_reg("t0", a)
        core.set_reg("t1", b)
    _, core, _ = run_single(source, setup)
    return core.int_regs.read(7)


class TestSignedDivision:
    def test_truncates_toward_zero_negative_dividend(self):
        assert run_div("div", -7, 2) == -3  # not floor (-4)
        assert run_div("rem", -7, 2) == -1  # sign follows the dividend

    def test_truncates_toward_zero_negative_divisor(self):
        assert run_div("div", 7, -2) == -3
        assert run_div("rem", 7, -2) == 1

    def test_both_negative(self):
        assert run_div("div", -7, -2) == 3
        assert run_div("rem", -7, -2) == -1

    def test_int_max_boundary(self):
        assert run_div("div", 0x7FFFFFFF, 1) == 0x7FFFFFFF
        assert run_div("div", 0x7FFFFFFF, 2) == 0x3FFFFFFF
        assert run_div("rem", 0x7FFFFFFF, 2) == 1
        # Large dividend over a large divisor: quotient must be exact even
        # though the operands exhaust the 32-bit range.
        assert run_div("div", 0x7FFFFFFF, 0x10001) == 0x7FFFFFFF // 0x10001
        assert run_div("rem", 0x7FFFFFFF, 0x10001) == 0x7FFFFFFF % 0x10001

    def test_overflow_int_min_by_minus_one_wraps(self):
        # RISC-V: quotient overflows and wraps back to INT_MIN, remainder 0.
        assert run_div("div", -(1 << 31), -1) == -(1 << 31)
        assert run_div("rem", -(1 << 31), -1) == 0

    def test_division_by_zero(self):
        assert run_div("div", 41, 0) == -1  # all ones
        assert run_div("rem", 41, 0) == 41  # dividend passes through


class TestUnsignedDivision:
    def test_operands_interpreted_unsigned(self):
        # -1 is 0xFFFFFFFF unsigned; the register file stores the wrapped
        # two's-complement view of the unsigned results.
        assert run_div("divu", -1, 2) == 0x7FFFFFFF
        assert run_div("remu", -1, 2) == 1

    def test_large_unsigned_boundaries(self):
        assert run_div("divu", -1, 1) == -1  # 0xFFFFFFFF / 1 = 0xFFFFFFFF
        assert run_div("divu", 0x80000000 - (1 << 32), 3) == 0x80000000 // 3
        assert run_div("remu", 0x80000000 - (1 << 32), 3) == 0x80000000 % 3

    def test_division_by_zero(self):
        assert run_div("divu", 41, 0) == -1  # all ones
        assert run_div("remu", 41, 0) == 41


class TestDivisionTiming:
    def test_divider_latency_stalls_pipeline(self):
        _, core, result = run_single("""
            li t0, 17
            li t1, 5
            div t2, t0, t1
            addi t3, t2, 1
        """)
        assert core.int_regs.read(28) == 4
        assert core.stalls.div == core.params.div_latency
        assert result.cycles > 4


class TestJalrTargetMasking:
    def test_negative_target_wraps_to_halt(self):
        # t0 + (-4) is negative; the wrapped 32-bit target lies far past the
        # end of the program, so the core must halt — the unmasked model
        # indexed the program from the end and executed the tail again.
        source = """
            li t0, 2
            jalr ra, t0, -4
            li a0, 99
        """
        _, core, _ = run_single(source)
        assert core.int_regs.read(10) == 0  # the tail li must not execute
        assert core.int_regs.read(1) == 2  # link register still written
        assert core.finished

    def test_forward_computed_jump(self):
        source = """
            li t0, 4
            jalr ra, t0, -1
            li a0, 99
            li a1, 7
        """
        _, core, _ = run_single(source)
        assert core.int_regs.read(10) == 0  # skipped
        assert core.int_regs.read(11) == 7  # landed on the last instruction
