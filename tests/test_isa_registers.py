"""Tests for register naming and register files."""

import pytest

from repro.isa.registers import (
    FpRegisterFile,
    IntRegisterFile,
    NUM_FP_REGS,
    NUM_INT_REGS,
    RegisterError,
    SSR_FP_REGS,
    fp_reg_name,
    int_reg_name,
    parse_fp_reg,
    parse_int_reg,
)


class TestRegisterNames:
    def test_int_abi_names_roundtrip(self):
        for idx in range(NUM_INT_REGS):
            assert parse_int_reg(int_reg_name(idx)) == idx

    def test_fp_abi_names_roundtrip(self):
        for idx in range(NUM_FP_REGS):
            assert parse_fp_reg(fp_reg_name(idx)) == idx

    def test_numeric_names(self):
        assert parse_int_reg("x0") == 0
        assert parse_int_reg("x31") == 31
        assert parse_fp_reg("f0") == 0
        assert parse_fp_reg("f31") == 31

    @pytest.mark.parametrize("name,idx", [
        ("zero", 0), ("ra", 1), ("sp", 2), ("t0", 5), ("t6", 31),
        ("a0", 10), ("a7", 17), ("s0", 8), ("fp", 8), ("s11", 27),
    ])
    def test_known_int_names(self, name, idx):
        assert parse_int_reg(name) == idx

    @pytest.mark.parametrize("name,idx", [
        ("ft0", 0), ("ft1", 1), ("ft2", 2), ("ft7", 7), ("fs0", 8),
        ("fa0", 10), ("fa7", 17), ("fs11", 27), ("ft8", 28), ("ft11", 31),
    ])
    def test_known_fp_names(self, name, idx):
        assert parse_fp_reg(name) == idx

    def test_case_insensitive(self):
        assert parse_int_reg("T0") == 5
        assert parse_fp_reg("FT3") == 3

    def test_unknown_names_raise(self):
        with pytest.raises(RegisterError):
            parse_int_reg("t9")
        with pytest.raises(RegisterError):
            parse_fp_reg("ft12")
        with pytest.raises(RegisterError):
            int_reg_name(32)
        with pytest.raises(RegisterError):
            fp_reg_name(-1)

    def test_ssr_regs_are_ft0_ft1_ft2(self):
        assert SSR_FP_REGS == (0, 1, 2)
        assert [fp_reg_name(r) for r in SSR_FP_REGS] == ["ft0", "ft1", "ft2"]


class TestIntRegisterFile:
    def test_x0_is_hardwired_zero(self):
        regs = IntRegisterFile()
        regs.write(0, 1234)
        assert regs.read(0) == 0

    def test_write_read(self):
        regs = IntRegisterFile()
        regs.write(5, 42)
        assert regs.read(5) == 42

    def test_wraps_to_32_bits(self):
        regs = IntRegisterFile()
        regs.write(6, 1 << 33)
        assert regs.read(6) == 0
        regs.write(6, (1 << 31))
        assert regs.read(6) == -(1 << 31)

    def test_negative_values_preserved(self):
        regs = IntRegisterFile()
        regs.write(7, -8)
        assert regs.read(7) == -8

    def test_snapshot_is_copy(self):
        regs = IntRegisterFile()
        regs.write(3, 9)
        snap = regs.snapshot()
        snap[3] = 0
        assert regs.read(3) == 9


class TestFpRegisterFile:
    def test_initial_zero(self):
        regs = FpRegisterFile()
        assert regs.read(10) == 0.0

    def test_write_read(self):
        regs = FpRegisterFile()
        regs.write(4, 3.5)
        assert regs.read(4) == 3.5

    def test_write_coerces_to_float(self):
        regs = FpRegisterFile()
        regs.write(4, 3)
        assert isinstance(regs.read(4), float)

    def test_snapshot_length(self):
        assert len(FpRegisterFile().snapshot()) == NUM_FP_REGS
