"""Tests for the fluent Experiment/ResultSet API and the plug-in registries."""

import json
from pathlib import Path

import pytest

from repro import (
    Experiment,
    StencilKernel,
    register_kernel,
    register_variant,
    run_kernel,
)
from repro.core.ir import Coeff, GridRef, add, mul
from repro.core.kernels import TABLE1_KERNELS, unregister_kernel
from repro.core.variants import unregister_variant
from repro.experiment import ExperimentError
from repro.sweep.job import SweepJob
from tests.conftest import small_tile

GOLDEN_PATH = Path(__file__).parent / "golden_cycles.json"


class TestExperimentBuilder:
    def test_lowers_full_cross_product(self):
        jobs = (Experiment().kernels("jacobi_2d", "j2d5pt")
                .variants("base", "saris")
                .machines("snitch-8", "snitch-4")
                .seeds(0, 1).jobs())
        assert len(jobs) == 2 * 2 * 2 * 2
        assert all(isinstance(job, SweepJob) for job in jobs)
        assert len({job.content_hash() for job in jobs}) == len(jobs)

    def test_defaults_fill_unset_axes(self):
        jobs = Experiment().kernels("jacobi_2d").jobs()
        assert [job.variant for job in jobs] == ["base", "saris"]
        assert all(job.machine.name == "snitch-8" for job in jobs)
        # ...but default-parameter machines canonicalize out of the hash, so
        # experiment jobs share cache entries with machine-unaware legacy
        # job lists.
        assert all(job.canonical_machine() is None for job in jobs)
        assert all(job.seed == 0 and job.tile_shape is None for job in jobs)

    def test_default_machine_jobs_share_legacy_cache_identity(self):
        unset = SweepJob.make("jacobi_2d", "saris")
        explicit = (Experiment().kernels("jacobi_2d").variants("saris")
                    .machines("snitch-8").jobs()[0])
        assert unset.content_hash() == explicit.content_hash()

    def test_kernels_axis_is_mandatory(self):
        with pytest.raises(ExperimentError, match="at least one kernel"):
            Experiment().variants("base").jobs()

    def test_unknown_names_fail_fast(self):
        with pytest.raises(KeyError):
            Experiment().kernels("not_a_kernel")
        with pytest.raises(KeyError):
            Experiment().kernels("jacobi_2d").variants("not_a_variant")
        with pytest.raises(KeyError):
            Experiment().kernels("jacobi_2d").machines("not-a-machine")

    def test_codegen_kwargs_reach_jobs(self):
        jobs = (Experiment().kernels("jacobi_2d").variants("saris")
                .codegen(use_frep=False).jobs())
        assert jobs[0].codegen_kwargs == (("use_frep", False),)


class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self):
        return (Experiment().kernels("jacobi_2d", "star3d7pt")
                .variants("base", "saris")
                .tiles()  # noop: keeps defaults
                .machines("snitch-8", "snitch-4")
                .run(workers=1, cache=False))

    def test_run_executes_everything(self, results):
        assert len(results) == 2 * 2 * 2
        assert results.report.executed == len(results)
        assert all(record.result.correct for record in results)

    def test_filter_by_fields_and_predicate(self, results):
        saris = results.filter(variant="saris")
        assert len(saris) == 4
        small = results.filter(lambda r: r.machine == "snitch-4",
                               kernel="jacobi_2d")
        assert len(small) == 2
        assert {r.variant for r in small} == {"base", "saris"}

    def test_group_by_field_and_callable(self, results):
        by_machine = results.group_by("machine")
        assert set(by_machine) == {"snitch-8", "snitch-4"}
        assert all(len(group) == 4 for group in by_machine.values())
        by_dims = results.group_by(lambda r: len(r.tile_shape))
        assert set(by_dims) == {2, 3}

    def test_speedup_and_only(self, results):
        sub = results.filter(kernel="jacobi_2d", machine="snitch-8")
        assert sub.speedup() > 1.0
        with pytest.raises(ExperimentError):
            results.only()

    def test_table_renders_all_records(self, results):
        table = results.table()
        assert "jacobi_2d" in table and "snitch-4" in table
        assert len(table.strip().splitlines()) == len(results) + 2

    def test_to_json_round_trips(self, results):
        payload = json.loads(results.to_json())
        assert len(payload) == len(results)
        assert {entry["machine"] for entry in payload} == {"snitch-8",
                                                           "snitch-4"}
        assert all(isinstance(entry["cycles"], int) for entry in payload)

    def test_serial_and_parallel_paths_agree(self, tmp_path):
        """Non-default presets produce identical metrics on both sweep paths,
        and every (job, machine) combination lands in its own store entry."""
        experiment = (Experiment().kernels("jacobi_2d")
                      .variants("base", "saris")
                      .machines("snitch-8", "snitch-4", "snitch-16")
                      .tiles(small_tile("jacobi_2d")))
        serial = experiment.run(workers=1, cache_dir=tmp_path / "serial")
        parallel = experiment.run(workers=2, cache=False)
        assert parallel.report.parallel and not serial.report.parallel
        for ser, par in zip(serial, parallel):
            assert ser.result == par.result
        from repro.sweep.store import ResultStore

        assert len(ResultStore(tmp_path / "serial")) == len(serial)


class TestRecordPower:
    def test_power_uses_machine_clock_and_cores(self):
        from repro import MachineSpec

        fast = MachineSpec.create("test-fast-8", clock_ghz=2.0)
        results = (Experiment().kernels("jacobi_2d").variants("saris")
                   .machines("snitch-8", fast)
                   .tiles(small_tile("jacobi_2d")).run(workers=1, cache=False))
        stock = results.filter(machine="snitch-8").only()
        clocked = results.filter(machine="test-fast-8").only()
        # Same dynamic activity, twice the clock -> twice the power.
        assert clocked.power().power_w == pytest.approx(
            2.0 * stock.power().power_w)


class TestPluginRegistries:
    def test_registered_kernel_reaches_experiment(self):
        @register_kernel("test_plug_2d")
        def build_plug():
            expr = mul(Coeff("c"), add(GridRef("inp", (0, 0)),
                                       GridRef("inp", (0, 1)),
                                       GridRef("inp", (0, -1))))
            return StencilKernel(name="test_plug_2d", dims=2, radius=1,
                                 inputs=["inp"], output="out", expr=expr,
                                 coefficients={"c": 0.3},
                                 description="plug-in test kernel")

        try:
            import repro
            import repro.core
            from repro import kernel_names
            assert "test_plug_2d" in kernel_names()
            # Every KERNEL_NAMES view is live, not an import-time snapshot.
            assert "test_plug_2d" in repro.KERNEL_NAMES
            assert "test_plug_2d" in repro.core.KERNEL_NAMES
            assert "test_plug_2d" in repro.core.kernels.KERNEL_NAMES
            results = (Experiment().kernels("test_plug_2d")
                       .tiles((10, 10)).run(workers=1, cache=False))
            assert len(results) == 2
            assert all(record.result.correct for record in results)
        finally:
            unregister_kernel("test_plug_2d")

    def test_registered_variant_reaches_runner(self):
        from repro.core.variants import get_variant

        base = get_variant("base")

        @register_variant("test_nofrep",
                          description="baseline without unrolling")
        def generate_nofrep(kernel, layout, geometry, cluster, **kwargs):
            return base.generate(kernel, layout, geometry, cluster,
                                 max_unroll=1, **kwargs)

        try:
            from repro.runner import VARIANTS as live_variants
            assert "test_nofrep" in live_variants
            result = run_kernel("jacobi_2d", "test_nofrep",
                                tile_shape=small_tile("jacobi_2d"))
            assert result.correct
            # A fresh paper-variant default sweep is unaffected by plug-ins.
            jobs = Experiment().kernels("jacobi_2d").jobs()
            assert [job.variant for job in jobs] == ["base", "saris"]
        finally:
            unregister_variant("test_nofrep")

    def test_editing_plugin_kernel_invalidates_cache(self, tmp_path):
        """Re-registering a kernel with new content under the same name must
        miss the store (the job hash carries a kernel content fingerprint)."""
        def register_taps(taps):
            @register_kernel("test_evolving", replace=True)
            def build():
                expr = mul(Coeff("c"), add(*[GridRef("inp", (0, dx))
                                             for dx in taps]))
                return StencilKernel(name="test_evolving", dims=2, radius=1,
                                     inputs=["inp"], output="out", expr=expr,
                                     coefficients={"c": 0.25})

        register_taps((-1, 0, 1))
        try:
            experiment = (Experiment().kernels("test_evolving")
                          .variants("saris").tiles((10, 10)))
            first = experiment.run(workers=1, cache_dir=tmp_path)
            assert first.report.executed == 1
            register_taps((-1, 1))  # edit the kernel, same name
            second = (Experiment().kernels("test_evolving").variants("saris")
                      .tiles((10, 10)).run(workers=1, cache_dir=tmp_path))
            assert second.report.cache_hits == 0 and second.report.executed == 1
            assert (second.only().result.cycles
                    != first.only().result.cycles)
        finally:
            unregister_kernel("test_evolving")

    def test_bare_register_kernel_decorator(self):
        @register_kernel
        def build_test_bare():
            expr = mul(Coeff("c"), GridRef("inp", (0, 0)))
            return StencilKernel(name="test_bare", dims=2, radius=1,
                                 inputs=["inp"], output="out", expr=expr,
                                 coefficients={"c": 2.0})

        try:
            from repro import get_kernel, kernel_names
            assert "test_bare" in kernel_names()
            assert get_kernel("test_bare").coefficients == {"c": 2.0}
            assert build_test_bare().name == "test_bare"  # fn returned intact
        finally:
            unregister_kernel("test_bare")

    def test_mismatched_kernel_object_rejected(self):
        """Passing an object whose name shadows a different registered kernel
        must fail instead of silently sweeping the registered one."""
        expr = mul(Coeff("c"), GridRef("inp", (0, 0)))
        impostor = StencilKernel(name="jacobi_2d", dims=2, radius=1,
                                 inputs=["inp"], output="out", expr=expr,
                                 coefficients={"c": 1.0})
        with pytest.raises(ExperimentError, match="differs from the registered"):
            Experiment().kernels(impostor)
        from repro import get_kernel
        Experiment().kernels(get_kernel("jacobi_2d"))  # matching object is fine

    def test_renamed_machine_clone_shares_cache_but_keeps_its_name(self):
        from repro import MachineSpec

        clone = MachineSpec.create("my-cluster")  # snitch-8 parameters
        job = SweepJob.make("jacobi_2d", machine=clone)
        assert job.content_hash() == SweepJob.make("jacobi_2d").content_hash()
        # The requested name survives onto experiment records.
        results = (Experiment().kernels("jacobi_2d").variants("saris")
                   .machines(clone).tiles(small_tile("jacobi_2d"))
                   .run(workers=1, cache=False))
        assert results.filter(machine="my-cluster").only().machine == "my-cluster"
        assert len(results.group_by("machine")) == 1

    def test_unknown_variant_error_names_registry(self):
        from repro.runner import RunnerError

        with pytest.raises(RunnerError, match="base"):
            run_kernel("jacobi_2d", "imaginary",
                       tile_shape=small_tile("jacobi_2d"))


class TestGoldenCompat:
    """Experiment on the default preset is bit-identical to the seed runner."""

    @pytest.fixture(scope="class")
    def golden(self):
        with GOLDEN_PATH.open() as fh:
            return json.load(fh)

    @pytest.fixture(scope="class")
    def experiment_results(self):
        return (Experiment().kernels(*TABLE1_KERNELS)
                .variants("base", "saris").run(workers=1, cache=False))

    @pytest.mark.parametrize("variant", ["base", "saris"])
    @pytest.mark.parametrize("name", sorted(TABLE1_KERNELS))
    def test_default_preset_reproduces_golden_cycles(self, experiment_results,
                                                     golden, name, variant):
        record = experiment_results.filter(kernel=name, variant=variant).only()
        expected = golden[f"{name}/{variant}"]
        result = record.result
        assert result.cycles == expected["cycles"]
        activity = result.activity
        assert activity.tcdm_requests == expected["tcdm_requests"]
        assert activity.tcdm_conflicts == expected["tcdm_conflicts"]
        assert activity.dma_bytes == expected["dma_bytes"]
        assert list(activity.core_cycles) == [core["cycles"]
                                              for core in expected["cores"]]
        for counter in ("int_retired", "fp_issued", "fp_compute", "flops"):
            assert getattr(activity, counter) == sum(core[counter]
                                                     for core in expected["cores"])
