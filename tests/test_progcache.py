"""Cross-job compile cache: persistence, stability and invalidation."""

import json
import os
import subprocess
import sys

import pytest

from repro.core import progcache
from repro.core.variants import register_variant, unregister_variant
from repro.fingerprint import callable_fingerprint, source_fingerprint
from repro.runner import _CODEGEN_CACHE, run_kernel


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Point every persistent cache at a scratch directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CODEGEN_CACHE", raising=False)
    _CODEGEN_CACHE.clear()
    yield tmp_path
    _CODEGEN_CACHE.clear()


class TestKeyStability:
    def test_key_hash_stable_across_processes(self):
        """Content hashes must not depend on PYTHONHASHSEED."""
        key = (("kernel", 1, (2, 3)), "saris", "abc123", (64, 64))
        expected = progcache.key_hash(key)
        code = (
            "from repro.core import progcache\n"
            f"print(progcache.key_hash({key!r}))\n"
        )
        for seed in ("0", "12345"):
            env = dict(os.environ,
                       PYTHONPATH="src" + os.pathsep
                       + os.environ.get("PYTHONPATH", ""),
                       PYTHONHASHSEED=seed)
            out = subprocess.run([sys.executable, "-c", code], env=env,
                                 capture_output=True, text=True, check=True)
            assert out.stdout.strip() == expected

    def test_source_fingerprint_covers_native_engine(self):
        with_c = source_fingerprint(("snitch",))
        assert len(with_c) == 12
        # the .c source participates: the store fingerprint must change if
        # engine.c changes, which source_fingerprint guarantees by sweeping
        # both suffixes; sanity-check the file is actually seen.
        from repro.fingerprint import _PACKAGE_ROOT

        assert (_PACKAGE_ROOT / "snitch" / "native" / "engine.c").exists()


class TestPersistence:
    def test_disk_hit_is_bit_identical_to_cold(self, isolated_cache):
        cold = run_kernel("jacobi_2d", variant="saris", tile_shape=(12, 12))
        assert len(list(progcache.cache_dir().glob("*.pkl"))) == 1
        # Drop the in-memory layer: the next run must hit the disk entry.
        _CODEGEN_CACHE.clear()
        warm = run_kernel("jacobi_2d", variant="saris", tile_shape=(12, 12))
        assert warm.cycles == cold.cycles
        assert warm.activity == cold.activity
        assert warm.program_info == cold.program_info

    def test_entries_shared_across_processes(self, isolated_cache):
        run_kernel("jacobi_2d", variant="saris", tile_shape=(12, 12))
        entries = list(progcache.cache_dir().glob("*.pkl"))
        assert len(entries) == 1
        code = (
            "from repro.runner import run_kernel\n"
            "from repro.core import progcache\n"
            "import repro.core.codegen_base as cb\n"
            "def boom(*a, **k):\n"
            "    raise AssertionError('codegen ran despite warm disk cache')\n"
            "cb.generate_base_program = boom\n"
            "result = run_kernel('jacobi_2d', variant='saris', "
            "tile_shape=(12, 12))\n"
            "print(result.cycles)\n"
        )
        env = dict(os.environ,
                   PYTHONPATH="src" + os.pathsep
                   + os.environ.get("PYTHONPATH", ""),
                   REPRO_CACHE_DIR=str(isolated_cache))
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True)
        assert out.returncode == 0, out.stderr
        assert int(out.stdout.strip()) > 0

    def test_env_var_disables_persistence(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_CACHE", "0")
        run_kernel("jacobi_2d", variant="saris", tile_shape=(12, 12))
        assert not progcache.cache_dir().exists()

    def test_corrupt_entry_degrades_to_miss(self, isolated_cache):
        run_kernel("jacobi_2d", variant="saris", tile_shape=(12, 12))
        (entry,) = progcache.cache_dir().glob("*.pkl")
        entry.write_bytes(b"not a pickle")
        _CODEGEN_CACHE.clear()
        result = run_kernel("jacobi_2d", variant="saris", tile_shape=(12, 12))
        assert result.correct


class TestInvalidation:
    def test_variant_source_change_invalidates(self, isolated_cache):
        """Re-registering a variant with different source misses cleanly."""

        def backend_v1(kernel, layout, geometry, cluster, **kwargs):
            from repro.core.codegen_base import generate_base_program
            generated = generate_base_program(kernel, layout, geometry,
                                              **kwargs)
            generated.info["plugin_version"] = 1
            return generated

        def backend_v2(kernel, layout, geometry, cluster, **kwargs):
            from repro.core.codegen_base import generate_base_program
            generated = generate_base_program(kernel, layout, geometry,
                                              **kwargs)
            generated.info["plugin_version"] = 2
            return generated

        assert callable_fingerprint(backend_v1) != \
            callable_fingerprint(backend_v2)
        register_variant("cachetest", description="v1")(backend_v1)
        try:
            first = run_kernel("jacobi_2d", variant="cachetest",
                               tile_shape=(12, 12))
            assert first.program_info[0]["plugin_version"] == 1
            unregister_variant("cachetest")
            register_variant("cachetest", description="v2")(backend_v2)
            _CODEGEN_CACHE.clear()
            second = run_kernel("jacobi_2d", variant="cachetest",
                                tile_shape=(12, 12))
            # Served freshly from the v2 backend, not the stale v1 entry.
            assert second.program_info[0]["plugin_version"] == 2
            assert len(list(progcache.cache_dir().glob("*.pkl"))) == 2
        finally:
            unregister_variant("cachetest")

    def test_kernel_content_change_invalidates(self, isolated_cache):
        """Two same-name kernels with different content get distinct entries."""
        from repro.core.kernels import get_kernel

        kernel = get_kernel("jacobi_2d")
        run_kernel(kernel, variant="saris", tile_shape=(12, 12))
        before = len(list(progcache.cache_dir().glob("*.pkl")))
        # Same name, different stencil content (coefficient tweak).
        import dataclasses

        coefficients = dict(kernel.coefficients)
        first_coeff = next(iter(coefficients))
        coefficients[first_coeff] *= 2.0
        modified = dataclasses.replace(kernel, coefficients=coefficients)
        _CODEGEN_CACHE.clear()
        run_kernel(modified, variant="saris", tile_shape=(12, 12),
                   check=False)
        after = len(list(progcache.cache_dir().glob("*.pkl")))
        assert after == before + 1

    def test_codegen_source_fingerprint_partitions_cache(self, isolated_cache,
                                                         monkeypatch):
        run_kernel("jacobi_2d", variant="saris", tile_shape=(12, 12))
        assert progcache.cache_dir().name == progcache.codegen_fingerprint()
        monkeypatch.setattr(progcache, "codegen_fingerprint",
                            lambda: "deadbeefcafe")
        assert not list(progcache.cache_dir().glob("*.pkl"))
