"""Tests for the SARIS stream-mapping method, parallelization and layout."""

import numpy as np
import pytest

from repro.core.kernels import get_kernel
from repro.core.layout import build_layout
from repro.core.lowering import GridOperand, lower_block
from repro.core.parallel import (
    GeometryError,
    X_INTERLEAVE,
    Y_INTERLEAVE,
    choose_block,
    cluster_geometry,
    coverage,
)
from repro.core.saris import (
    SR0,
    SR1,
    index_width_bytes,
    map_streams,
    resolve_index_entries,
)
from repro.core.schedule import schedule_block
from repro.snitch.tcdm import TCDM, TcdmAllocator
from tests.conftest import small_tile


def _mapped_block(kernel_name, unroll=1, **kwargs):
    kernel = get_kernel(kernel_name)
    block = lower_block(kernel, unroll=unroll)
    scheduled = schedule_block(block.ops)
    mapping = map_streams(scheduled.ops, num_coeffs=kernel.coeffs_per_point, **kwargs)
    return kernel, scheduled, mapping


class TestStreamMapping:
    def test_every_grid_load_is_mapped(self, any_kernel):
        block = lower_block(any_kernel, unroll=2)
        scheduled = schedule_block(block.ops)
        mapping = map_streams(scheduled.ops, num_coeffs=any_kernel.coeffs_per_point)
        mapped = sum(len(seq) for seq in mapping.sr_sequences.values())
        assert mapped == 2 * any_kernel.loads_per_point

    def test_only_indirect_movers_used(self, any_kernel):
        _, _, mapping = _mapped_block(any_kernel.name)
        assert set(mapping.sr_sequences) == {SR0, SR1}
        assert set(mapping.grid_assignment.values()) <= {SR0, SR1}

    def test_pairs_split_across_streams(self):
        # The 7-point star pairs opposing neighbours in single operations; the
        # two operands of such an operation must land on different SRs.
        kernel, scheduled, mapping = _mapped_block("star3d7pt")
        for op_index, op in enumerate(scheduled.ops):
            grid_ops = op.grid_operands()
            if len(grid_ops) == 2:
                dms = {mapping.assigned_dm(op_index, src_idx)
                       for src_idx, _ in grid_ops}
                assert dms == {SR0, SR1}

    def test_utilization_balance(self, any_kernel):
        _, _, mapping = _mapped_block(any_kernel.name, unroll=2)
        lengths = mapping.stream_lengths
        assert abs(lengths[SR0] - lengths[SR1]) <= 1
        assert mapping.balance > 0.7

    def test_store_streamed_policy_follows_budget(self):
        _, _, few = _mapped_block("jacobi_2d")
        assert few.store_streamed and few.resident_coeffs
        _, _, many = _mapped_block("j3d27pt")
        assert not many.store_streamed
        assert len(many.coeff_sequence) > 0

    def test_force_override(self):
        _, _, forced = _mapped_block("jacobi_2d", force_store_streamed=False)
        assert not forced.store_streamed

    def test_coeff_sequence_in_schedule_order(self):
        kernel, scheduled, mapping = _mapped_block("box3d1r")
        expected = [operand.name for op in scheduled.ops if op.is_compute
                    for _i, operand in op.coeff_operands()]
        assert mapping.coeff_sequence == expected

    def test_sequences_follow_schedule_order(self):
        kernel, scheduled, mapping = _mapped_block("j2d5pt")
        # Rebuild the expected sequences by walking the schedule.
        rebuilt = {SR0: [], SR1: []}
        for op_index, op in enumerate(scheduled.ops):
            for src_idx, operand in op.grid_operands():
                rebuilt[mapping.assigned_dm(op_index, src_idx)].append(operand)
        assert rebuilt == mapping.sr_sequences


class TestIndexResolution:
    def test_entries_point_at_correct_elements(self):
        kernel = get_kernel("jacobi_2d")
        tcdm = TCDM()
        layout = build_layout(kernel, TcdmAllocator(tcdm), (12, 12))
        sequence = [GridOperand("inp", (0, -1), 0), GridOperand("inp", (1, 0), 0),
                    GridOperand("inp", (0, 0), 1)]
        entries = resolve_index_entries(sequence, layout, "inp")
        assert entries == [-1, 12, X_INTERLEAVE]

    def test_multi_array_offsets(self):
        kernel = get_kernel("ac_iso_cd")
        tcdm = TCDM()
        layout = build_layout(kernel, TcdmAllocator(tcdm), (12, 12, 12))
        sequence = [GridOperand("u_prev", (0, 0, 0), 0)]
        entries = resolve_index_entries(sequence, layout, "u")
        expected = (layout.arrays["u_prev"] - layout.arrays["u"]) // 8
        assert entries == [expected]

    def test_block_replication_shifts_points(self):
        kernel = get_kernel("jacobi_2d")
        tcdm = TCDM()
        layout = build_layout(kernel, TcdmAllocator(tcdm), (12, 12))
        sequence = [GridOperand("inp", (0, 0), 0)]
        entries = resolve_index_entries(sequence, layout, "inp",
                                        block_reps=3, block_points=2)
        assert entries == [0, 2 * X_INTERLEAVE, 4 * X_INTERLEAVE]

    def test_index_width_selection(self):
        assert index_width_bytes([0, 100, -100]) == 2
        assert index_width_bytes([40000]) == 4
        assert index_width_bytes([-40000]) == 4
        assert index_width_bytes([]) == 2


class TestParallelization:
    def test_lane_arrangement_must_match_core_count(self):
        kernel = get_kernel("jacobi_2d")
        with pytest.raises(GeometryError):
            cluster_geometry(kernel, (16, 16), num_cores=6, x_interleave=4,
                             y_interleave=2)

    def test_non_default_core_counts_derive_lanes(self):
        """Machine-spec core counts partition the tile exactly (one owner per point)."""
        kernel = get_kernel("jacobi_2d")
        for num_cores in (4, 6, 16):
            geometries = cluster_geometry(kernel, (16, 16), num_cores=num_cores)
            assert len(geometries) == num_cores
            assert set(coverage(geometries).values()) == {1}

    def test_coverage_is_exact_partition(self, any_kernel):
        shape = small_tile(any_kernel.name)
        geometries = cluster_geometry(any_kernel, shape)
        counts = coverage(geometries)
        assert set(counts.values()) == {1}
        assert len(counts) == any_kernel.interior_points(shape)

    def test_lane_assignment(self):
        kernel = get_kernel("jacobi_2d")
        geometries = cluster_geometry(kernel, (16, 16))
        assert len(geometries) == 8
        for geom in geometries:
            assert geom.x_lane == geom.core_id % X_INTERLEAVE
            assert geom.y_lane == geom.core_id // X_INTERLEAVE
            assert all((x - kernel.radius) % X_INTERLEAVE == geom.x_lane
                       for x in geom.x_indices)
            assert all((y - kernel.radius) % Y_INTERLEAVE == geom.y_lane
                       for y in geom.y_indices)

    def test_3d_kernels_sweep_all_planes(self):
        kernel = get_kernel("star3d2r")
        geometries = cluster_geometry(kernel, (10, 10, 10))
        for geom in geometries:
            assert geom.z_indices == list(range(2, 8))

    def test_tiny_interior_rejected(self):
        kernel = get_kernel("star2d3r")
        with pytest.raises(GeometryError):
            cluster_geometry(kernel, (9, 9))

    def test_total_points_consistent(self, any_kernel):
        shape = small_tile(any_kernel.name)
        geometries = cluster_geometry(any_kernel, shape)
        assert sum(g.total_points for g in geometries) == any_kernel.interior_points(shape)

    @pytest.mark.parametrize("count,limit,expected", [
        (16, 4, 4), (15, 4, 3), (14, 4, 2), (13, 4, 1), (12, 16, 12),
        (15, 16, 15), (3, 4, 3), (1, 4, 1), (0, 4, 1),
    ])
    def test_choose_block(self, count, limit, expected):
        assert choose_block(count, limit) == expected

    def test_block_candidates_are_divisors(self):
        kernel = get_kernel("jacobi_2d")
        geom = cluster_geometry(kernel, (64, 64))[0]
        for candidate in geom.block_candidates(4):
            assert geom.x_count % candidate == 0


class TestLayout:
    def test_arrays_disjoint_and_aligned(self, any_kernel):
        tcdm = TCDM()
        layout = build_layout(any_kernel, TcdmAllocator(tcdm),
                              small_tile(any_kernel.name))
        addresses = sorted(layout.arrays.values())
        tile_bytes = layout.tile_elems * 8
        for addr in addresses:
            assert addr % 8 == 0
        for first, second in zip(addresses, addresses[1:]):
            assert second >= first + tile_bytes

    def test_address_computation_matches_linear_index(self):
        kernel = get_kernel("star3d2r")
        tcdm = TCDM()
        layout = build_layout(kernel, TcdmAllocator(tcdm), (10, 10, 10))
        addr = layout.address("inp", (2, 3, 4))
        assert addr == layout.arrays["inp"] + ((2 * 10 + 3) * 10 + 4) * 8

    def test_coeff_table_contains_all_coefficients(self, any_kernel):
        tcdm = TCDM()
        layout = build_layout(any_kernel, TcdmAllocator(tcdm),
                              small_tile(any_kernel.name))
        for name in any_kernel.coefficients:
            assert name in layout.coeff_order
            assert layout.coeff_address(name) >= layout.coeff_table
        values = layout.coeff_table_values()
        assert len(values) == len(layout.coeff_order)

    def test_wrong_rank_tile_rejected(self):
        kernel = get_kernel("jacobi_2d")
        with pytest.raises(ValueError):
            build_layout(kernel, TcdmAllocator(TCDM()), (8, 8, 8))

    def test_unknown_array_rejected(self):
        kernel = get_kernel("jacobi_2d")
        layout = build_layout(kernel, TcdmAllocator(TCDM()), (12, 12))
        with pytest.raises(KeyError):
            layout.address("nope", (0, 0))
