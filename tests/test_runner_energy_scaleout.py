"""Tests for the runner API, energy model, scaleout model and analysis helpers."""

import numpy as np
import pytest

from repro import compare_variants, get_kernel, run_kernel
from repro.analysis import format_table, geomean, relative_error, summarize_pairs
from repro.energy import EnergyModel, energy_comparison, estimate_power
from repro.runner import RunnerError, measure_dma_utilization, tile_traffic_bytes
from repro.scaleout import (
    ManticoreConfig,
    RELATED_WORK,
    best_gpu_fraction,
    estimate_scaleout,
    estimate_scaleout_pair,
    peak_fraction_table,
    scaleout_grid_shape,
)
from repro.snitch.params import TimingParams
from tests.conftest import small_tile


@pytest.fixture(scope="module")
def jacobi_pair():
    """One base/saris comparison shared by the runner/energy/scaleout tests."""
    return compare_variants("jacobi_2d", tile_shape=(16, 16))


@pytest.fixture(scope="module")
def heavy_pair():
    """A register-bound 3D kernel comparison (coefficient streaming path)."""
    return compare_variants("j3d27pt", tile_shape=(8, 8, 8))


class TestRunner:
    def test_result_fields_populated(self, jacobi_pair):
        result = jacobi_pair.saris
        assert result.kernel == "jacobi_2d" and result.variant == "saris"
        assert result.cycles > 0
        assert 0.0 < result.fpu_util <= 1.0
        assert 0.0 < result.ipc <= 2.0
        assert result.correct
        assert len(result.program_info) == 8
        assert 0.0 < result.flops_fraction_of_peak <= 1.0

    def test_saris_beats_base(self, jacobi_pair):
        assert jacobi_pair.speedup > 1.2
        assert jacobi_pair.saris.fpu_util > jacobi_pair.base.fpu_util

    def test_unknown_variant_rejected(self):
        with pytest.raises(Exception):
            run_kernel("jacobi_2d", variant="gpu", tile_shape=(12, 12))

    def test_explicit_grids_accepted(self):
        kernel = get_kernel("jacobi_2d")
        grids = {"inp": np.ones((12, 12))}
        result = run_kernel(kernel, variant="saris", tile_shape=(12, 12), grids=grids)
        assert result.correct

    def test_missing_input_grid_rejected(self):
        kernel = get_kernel("ac_iso_cd")
        with pytest.raises(RunnerError):
            run_kernel(kernel, variant="saris", tile_shape=(12, 12, 12),
                       grids={"u": np.zeros((12, 12, 12))})

    def test_as_dict_contains_headline_metrics(self, jacobi_pair):
        row = jacobi_pair.base.as_dict()
        assert {"kernel", "variant", "cycles", "fpu_util", "ipc"} <= set(row)

    def test_tile_traffic_accounting(self):
        kernel = get_kernel("ac_iso_cd")
        traffic = tile_traffic_bytes(kernel, (12, 12, 12))
        assert traffic == 2 * 12 ** 3 * 8 + 4 ** 3 * 8

    def test_dma_utilization_in_range(self, table1_kernel):
        util = measure_dma_utilization(table1_kernel, table1_kernel.default_tile)
        assert 0.2 < util <= 1.0

    def test_dma_utilization_lower_for_3d_tiles(self):
        util_2d = measure_dma_utilization(get_kernel("jacobi_2d"), (64, 64))
        util_3d = measure_dma_utilization(get_kernel("star3d2r"), (16, 16, 16))
        assert util_3d < util_2d


class TestEnergyModel:
    def test_power_in_plausible_range(self, jacobi_pair):
        base = estimate_power(jacobi_pair.base)
        saris = estimate_power(jacobi_pair.saris)
        assert 0.1 < base.power_w < 0.5
        assert 0.2 < saris.power_w < 0.7
        assert saris.power_w > base.power_w

    def test_energy_efficiency_gain_positive(self, jacobi_pair):
        row = energy_comparison(jacobi_pair.base, jacobi_pair.saris)
        assert row["energy_efficiency_gain"] > 1.0
        assert row["speedup"] == pytest.approx(jacobi_pair.speedup)

    def test_energy_scales_with_cycles(self, jacobi_pair):
        base = estimate_power(jacobi_pair.base)
        saris = estimate_power(jacobi_pair.saris)
        assert base.energy_j > saris.energy_j  # saris wins overall energy

    def test_gflops_per_watt(self, jacobi_pair):
        saris = estimate_power(jacobi_pair.saris)
        assert saris.gflops_per_watt > 0

    def test_custom_model_parameters(self, jacobi_pair):
        hot = EnergyModel(fpu_op_pj=100.0)
        cold = EnergyModel(fpu_op_pj=10.0)
        assert (estimate_power(jacobi_pair.saris, model=hot).power_w
                > estimate_power(jacobi_pair.saris, model=cold).power_w)

    def test_power_tracks_activity(self, jacobi_pair, heavy_pair):
        # Both saris variants should have clearly higher power than both bases.
        base_powers = [estimate_power(p.base).power_w for p in (jacobi_pair, heavy_pair)]
        saris_powers = [estimate_power(p.saris).power_w for p in (jacobi_pair, heavy_pair)]
        assert min(saris_powers) > max(base_powers) * 1.2


class TestScaleoutModel:
    def test_config_derived_quantities(self):
        config = ManticoreConfig()
        assert config.num_clusters == 32
        assert config.num_cores == 256
        assert config.peak_gflops == pytest.approx(512.0)
        assert config.bytes_per_cycle_per_cluster == pytest.approx(12.8)

    def test_grid_shapes_match_paper(self):
        assert scaleout_grid_shape(get_kernel("jacobi_2d")) == (16384, 16384)
        assert scaleout_grid_shape(get_kernel("j3d27pt")) == (512, 512, 512)

    def test_low_intensity_kernel_is_memory_bound(self, jacobi_pair):
        pair = estimate_scaleout_pair(get_kernel("jacobi_2d"),
                                      jacobi_pair.base, jacobi_pair.saris)
        assert pair["memory_bound"]
        assert pair["cmtr"] < 1.0

    def test_high_intensity_kernel_is_compute_bound(self, heavy_pair):
        pair = estimate_scaleout_pair(get_kernel("j3d27pt"),
                                      heavy_pair.base, heavy_pair.saris)
        assert not pair["memory_bound"]
        assert pair["cmtr"] > 1.0
        assert pair["speedup"] > 1.5

    def test_memory_bound_degrades_fpu_util(self, jacobi_pair):
        kernel = get_kernel("jacobi_2d")
        est = estimate_scaleout(kernel, jacobi_pair.saris,
                                jacobi_pair.saris.dma_utilization)
        assert est.fpu_util <= jacobi_pair.saris.fpu_util

    def test_fraction_of_peak_bounded(self, heavy_pair):
        kernel = get_kernel("j3d27pt")
        est = estimate_scaleout(kernel, heavy_pair.saris,
                                heavy_pair.saris.dma_utilization)
        assert 0.0 < est.fraction_of_peak < 1.0
        assert est.gflops == pytest.approx(est.fraction_of_peak * 512.0)

    def test_more_bandwidth_removes_memory_boundedness(self, jacobi_pair):
        kernel = get_kernel("jacobi_2d")
        fat_pipe = ManticoreConfig(hbm_device_gbs=51.2 * 100)
        est = estimate_scaleout(kernel, jacobi_pair.saris,
                                jacobi_pair.saris.dma_utilization, config=fat_pipe)
        assert not est.memory_bound

    def test_related_work_table(self):
        assert len(RELATED_WORK) == 9
        assert best_gpu_fraction() == pytest.approx(0.69)
        rows = peak_fraction_table(0.75)
        assert rows[-1]["work"].startswith("SARIS")
        assert rows[-1]["peak_fraction"] == 0.75


class TestAnalysisHelpers:
    def test_geomean_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")

    def test_summarize_pairs(self):
        pairs = {"a": {"speedup": 2.0}, "b": {"speedup": 8.0}}
        summary = summarize_pairs(pairs, "speedup")
        assert summary["geomean"] == pytest.approx(4.0)
        assert summary["min"] == 2.0 and summary["max"] == 8.0

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["x", 1.2345], ["longer", 2]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "-" in lines[2]
        assert len(lines) == 5
