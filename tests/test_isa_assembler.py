"""Tests for the instruction model, assembler and program container."""

import pytest

from repro.isa.assembler import AssemblerError, assemble, parse_instruction
from repro.isa.instruction import (
    FP_COMPUTE_MNEMONICS,
    FP_MNEMONICS,
    Instruction,
    MNEMONIC_FORMATS,
    flops_of,
    is_fp_instruction,
)
from repro.isa.program import Program, ProgramError


class TestInstructionModel:
    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            Instruction(mnemonic="bogus")

    def test_classification_flags(self):
        fadd = parse_instruction("fadd.d ft3, ft4, ft5")
        assert fadd.is_fp and fadd.is_fp_compute and not fadd.is_branch
        bne = parse_instruction("bne t0, t1, loop")
        assert bne.is_branch and not bne.is_fp
        fld = parse_instruction("fld ft3, 8(t0)")
        assert fld.is_fp and not fld.is_fp_compute

    @pytest.mark.parametrize("mnemonic,expected", [
        ("fadd.d", 1), ("fsub.d", 1), ("fmul.d", 1),
        ("fmadd.d", 2), ("fmsub.d", 2), ("fnmsub.d", 2), ("fnmadd.d", 2),
        ("fld", 0), ("fsd", 0), ("addi", 0), ("fsgnj.d", 0),
    ])
    def test_flop_counts(self, mnemonic, expected):
        assert flops_of(mnemonic) == expected

    def test_fp_classification_sets_are_consistent(self):
        assert FP_COMPUTE_MNEMONICS <= FP_MNEMONICS
        for mnemonic in FP_MNEMONICS:
            assert is_fp_instruction(mnemonic)
        assert not is_fp_instruction("addi")

    def test_every_mnemonic_renders_back_to_text(self):
        # Build a minimal valid instruction for each mnemonic and round-trip it.
        samples = {
            "rd": 5, "rs1": 6, "rs2": 7, "rs3": 8, "imm": 4, "imm2": 1,
        }
        for mnemonic, fmt in MNEMONIC_FORMATS.items():
            kwargs = {}
            for kind in fmt:
                if kind in ("rd", "frd"):
                    kwargs["rd"] = samples["rd"]
                elif kind in ("rs1", "frs1"):
                    kwargs["rs1"] = samples["rs1"]
                elif kind in ("rs2", "frs2"):
                    kwargs["rs2"] = samples["rs2"]
                elif kind == "frs3":
                    kwargs["rs3"] = samples["rs3"]
                elif kind == "imm":
                    kwargs["imm"] = samples["imm"]
                elif kind == "imm2":
                    kwargs["imm2"] = samples["imm2"]
                elif kind == "mem":
                    kwargs["imm"] = 8
                    kwargs["rs1"] = 6
                elif kind == "label":
                    kwargs["target"] = "somewhere"
                elif kind == "csr":
                    kwargs["csr"] = "mhartid"
            inst = Instruction(mnemonic=mnemonic, **kwargs)
            text = inst.to_text()
            assert text.startswith(mnemonic)
            if "label" not in fmt:
                reparsed = parse_instruction(text)
                assert reparsed.mnemonic == mnemonic


class TestAssemblerParsing:
    def test_simple_alu(self):
        inst = parse_instruction("addi t0, t1, -8")
        assert (inst.mnemonic, inst.rd, inst.rs1, inst.imm) == ("addi", 5, 6, -8)

    def test_memory_operand(self):
        inst = parse_instruction("fld ft3, -16(a0)")
        assert inst.rd == 3 and inst.rs1 == 10 and inst.imm == -16

    def test_store_operand_order(self):
        inst = parse_instruction("fsd ft4, 24(t2)")
        assert inst.rs2 == 4 and inst.rs1 == 7 and inst.imm == 24

    def test_hex_immediates(self):
        inst = parse_instruction("li t0, 0x10000000")
        assert inst.imm == 0x10000000

    def test_fmadd_operands(self):
        inst = parse_instruction("fmadd.d ft3, ft4, ft5, ft6")
        assert (inst.rd, inst.rs1, inst.rs2, inst.rs3) == (3, 4, 5, 6)

    def test_csr_parsing(self):
        inst = parse_instruction("csrr a0, mhartid")
        assert inst.rd == 10 and inst.csr == "mhartid"

    def test_ssr_config_instruction(self):
        inst = parse_instruction("ssr.cfg.bound 2, 1, t3")
        assert inst.imm == 2 and inst.imm2 == 1 and inst.rs1 == 28

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblerError):
            parse_instruction("addi t0, t1")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            parse_instruction("frobnicate t0")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblerError):
            parse_instruction("addi q0, t1, 1")

    def test_bad_memory_operand_rejected(self):
        with pytest.raises(AssemblerError):
            parse_instruction("fld ft0, t0")

    def test_unsupported_csr_rejected(self):
        with pytest.raises(AssemblerError):
            parse_instruction("csrr t0, mstatus")


class TestAssembleProgram:
    SOURCE = """
    # setup
        li      t0, 100
        li      t1, 116
    loop:
        addi    t0, t0, 8       # advance
        bne     t0, t1, loop
        nop
    """

    def test_labels_resolve_to_indices(self):
        program = assemble(self.SOURCE, name="demo")
        assert program.labels == {"loop": 2}
        branch = program[3]
        assert branch.target == "loop" and branch.target_idx == 2

    def test_comments_and_blanks_skipped(self):
        program = assemble(self.SOURCE)
        assert len(program) == 5

    def test_label_on_same_line_as_instruction(self):
        program = assemble("start: addi t0, t0, 1\n  bne t0, t1, start\n")
        assert program.labels["start"] == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\na:\n  nop\n")

    def test_undefined_label_rejected(self):
        with pytest.raises(ProgramError):
            assemble("  j nowhere\n")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("  nop\n  bogus t0\n")

    def test_round_trip_through_text(self):
        program = assemble(self.SOURCE, name="demo")
        again = assemble(program.to_text(), name="demo2")
        assert [i.mnemonic for i in again] == [i.mnemonic for i in program]
        assert again.labels == program.labels


class TestProgramStatistics:
    def test_instruction_mix_classification(self):
        program = assemble("""
        x:
            fld ft3, 0(t0)
            fmul.d ft4, ft3, ft3
            fsd ft4, 0(t1)
            addi t0, t0, 8
            addi t1, t1, 8
            bne t0, t2, x
        """)
        mix = program.static_instruction_mix()
        assert mix["fp_compute"] == 1
        assert mix["fp_mem"] == 2
        assert mix["address"] == 2
        assert mix["branch"] == 1

    def test_loop_bounds(self):
        program = assemble("""
            li t0, 0
        body:
            addi t0, t0, 1
            bne t0, t1, body
            nop
        """)
        start, end = program.loop_bounds("body")
        assert (start, end) == (1, 3)

    def test_loop_bounds_missing_label(self):
        program = assemble("  nop\n")
        with pytest.raises(ProgramError):
            program.loop_bounds("body")

    def test_count_helper(self):
        program = assemble("  nop\n  nop\n  addi t0, t0, 1\n")
        assert program.count(["nop"]) == 2
        assert program.count(["addi", "nop"]) == 3
