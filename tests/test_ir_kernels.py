"""Tests for the expression IR, kernel specifications and NumPy reference."""

import numpy as np
import pytest

from repro.core.ir import (
    BinOp,
    Coeff,
    Const,
    GridRef,
    add,
    arrays_read,
    coeff_names,
    count_flops,
    count_loads,
    grid_refs,
    max_offset_radius,
    mul,
    sub,
    substitute_coeffs,
)
from repro.core.kernels import (
    KERNEL_NAMES,
    TABLE1_EXPECTED,
    TABLE1_KERNELS,
    all_kernels,
    box_offsets,
    get_kernel,
    star_offsets,
    table1_kernels,
)
from repro.core.reference import reference_sweep, reference_time_step
from repro.core.stencil import KernelError, StencilKernel
from tests.conftest import small_tile


class TestExpressionIr:
    def test_operator_overloads_build_binops(self):
        a, b = GridRef("inp", (0, 0)), Coeff("c0")
        expr = a * b + 2.0
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.rhs, Const) and expr.rhs.value == 2.0

    def test_add_left_associates(self):
        terms = [Coeff(f"c{i}") for i in range(4)]
        expr = add(*terms)
        assert count_flops(expr) == 3

    def test_counts(self):
        expr = add(mul(Coeff("a"), GridRef("inp", (0, 1))),
                   mul(Coeff("b"), GridRef("inp", (1, 0))))
        assert count_flops(expr) == 3
        assert count_loads(expr) == 2
        assert coeff_names(expr) == ["a", "b"]
        assert arrays_read(expr) == ["inp"]
        assert max_offset_radius(expr) == 1

    def test_grid_refs_in_order(self):
        expr = add(GridRef("u", (0, 1)), GridRef("v", (1, 0)))
        refs = grid_refs(expr)
        assert [r.array for r in refs] == ["u", "v"]

    def test_substitute_coeffs(self):
        expr = mul(Coeff("a"), GridRef("inp", (0, 0)))
        replaced = substitute_coeffs(expr, {"a": 2.0})
        assert isinstance(replaced.lhs, Const) and replaced.lhs.value == 2.0
        with pytest.raises(KeyError):
            substitute_coeffs(expr, {})

    def test_sub_builds_minus(self):
        expr = sub(GridRef("a", (0,) * 2), GridRef("b", (0,) * 2))
        assert expr.op == "-"

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("/", Coeff("a"), Coeff("b"))


class TestStencilOffsets:
    def test_star_offsets_counts(self):
        assert len(star_offsets(2, 1)) == 5
        assert len(star_offsets(2, 3)) == 13
        assert len(star_offsets(3, 2)) == 13
        assert len(star_offsets(3, 4)) == 25

    def test_box_offsets_counts(self):
        assert len(box_offsets(2, 1)) == 9
        assert len(box_offsets(3, 1)) == 27

    def test_star_offsets_are_unique_and_centered(self):
        offsets = star_offsets(3, 2)
        assert len(set(offsets)) == len(offsets)
        assert (0, 0, 0) in offsets


class TestKernelRegistry:
    def test_registry_contains_table1_plus_example(self):
        assert set(TABLE1_KERNELS) <= set(KERNEL_NAMES)
        assert "star3d7pt" in KERNEL_NAMES
        assert len(all_kernels()) == len(KERNEL_NAMES)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            get_kernel("not_a_kernel")

    def test_table1_order_matches_paper(self):
        assert TABLE1_KERNELS[0] == "jacobi_2d"
        assert TABLE1_KERNELS[-1] == "j3d27pt"
        flops = [get_kernel(name).flops_per_point for name in TABLE1_KERNELS]
        assert flops == sorted(flops)

    @pytest.mark.parametrize("name", sorted(TABLE1_EXPECTED))
    def test_table1_characteristics(self, name):
        kernel = get_kernel(name)
        expected = TABLE1_EXPECTED[name]
        assert kernel.dims == expected["dims"]
        assert kernel.radius == expected["radius"]
        assert kernel.loads_per_point == expected["loads"]
        assert kernel.coeffs_per_point == expected["coeffs"]
        assert kernel.flops_per_point == expected["flops"]

    def test_default_tiles_match_paper(self, table1_kernel):
        if table1_kernel.dims == 2:
            assert table1_kernel.default_tile == (64, 64)
        else:
            assert table1_kernel.default_tile == (16, 16, 16)

    def test_characteristics_dict(self):
        row = get_kernel("jacobi_2d").characteristics()
        assert row["code"] == "jacobi_2d" and row["flops"] == 5


class TestKernelValidation:
    def test_offset_rank_mismatch_rejected(self):
        with pytest.raises(KernelError):
            StencilKernel(name="bad", dims=3, radius=1, inputs=["inp"],
                          output="out", expr=GridRef("inp", (0, 0)) * Coeff("c"),
                          coefficients={"c": 1.0})

    def test_offset_beyond_radius_rejected(self):
        with pytest.raises(KernelError):
            StencilKernel(name="bad", dims=2, radius=1, inputs=["inp"],
                          output="out",
                          expr=mul(Coeff("c"), GridRef("inp", (0, 2))),
                          coefficients={"c": 1.0})

    def test_missing_coefficient_rejected(self):
        with pytest.raises(KernelError):
            StencilKernel(name="bad", dims=2, radius=1, inputs=["inp"],
                          output="out",
                          expr=mul(Coeff("c"), GridRef("inp", (0, 1))),
                          coefficients={})

    def test_undeclared_array_rejected(self):
        with pytest.raises(KernelError):
            StencilKernel(name="bad", dims=2, radius=1, inputs=["inp"],
                          output="out",
                          expr=mul(Coeff("c"), GridRef("other", (0, 1))),
                          coefficients={"c": 1.0})

    def test_output_aliasing_input_rejected(self):
        with pytest.raises(KernelError):
            StencilKernel(name="bad", dims=2, radius=1, inputs=["inp"],
                          output="inp",
                          expr=mul(Coeff("c"), GridRef("inp", (0, 1))),
                          coefficients={"c": 1.0})

    def test_tile_too_small_rejected(self):
        kernel = get_kernel("star2d3r")
        with pytest.raises(KernelError):
            kernel.interior_shape((6, 6))


class TestKernelGeometryHelpers:
    def test_interior_points(self, any_kernel):
        shape = small_tile(any_kernel.name)
        interior = any_kernel.interior_shape(shape)
        assert all(n > 0 for n in interior)
        assert any_kernel.interior_points(shape) == int(np.prod(interior))

    def test_flops_per_tile(self):
        kernel = get_kernel("jacobi_2d")
        assert kernel.flops_per_tile((12, 12)) == 100 * 5

    def test_make_grids_shapes_and_determinism(self, any_kernel):
        shape = small_tile(any_kernel.name)
        grids_a = any_kernel.make_grids(shape, seed=3)
        grids_b = any_kernel.make_grids(shape, seed=3)
        assert set(grids_a) == set(any_kernel.arrays)
        for name in any_kernel.inputs:
            assert grids_a[name].shape == tuple(shape)
            assert np.array_equal(grids_a[name], grids_b[name])
        assert np.all(grids_a[any_kernel.output] == 0.0)

    def test_operational_intensity_orders_kernels(self):
        # More FLOPs per point with the same footprint => higher intensity.
        low = get_kernel("jacobi_2d").operational_intensity()
        high = get_kernel("j2d9pt").operational_intensity()
        assert high > low


class TestReferenceEvaluator:
    def test_jacobi_matches_hand_written(self):
        kernel = get_kernel("jacobi_2d")
        grids = kernel.make_grids((10, 10), seed=1)
        out = reference_time_step(kernel, grids)
        inp = grids["inp"]
        manual = grids["out"].copy()
        manual[1:-1, 1:-1] = 0.2 * (
            inp[1:-1, 1:-1] + inp[1:-1, :-2] + inp[1:-1, 2:]
            + inp[:-2, 1:-1] + inp[2:, 1:-1])
        assert np.allclose(out, manual)

    def test_star3d7pt_matches_hand_written(self):
        kernel = get_kernel("star3d7pt")
        grids = kernel.make_grids((8, 8, 8), seed=2)
        out = reference_time_step(kernel, grids)
        u = grids["inp"]
        c = kernel.coefficients
        manual = grids["out"].copy()
        manual[1:-1, 1:-1, 1:-1] = (
            c["c0"] * u[1:-1, 1:-1, 1:-1]
            + c["cx"] * (u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:])
            + c["cy"] * (u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1])
            + c["cz"] * (u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]))
        assert np.allclose(out, manual)

    def test_halo_preserved(self, any_kernel):
        shape = small_tile(any_kernel.name)
        grids = any_kernel.make_grids(shape, seed=0)
        grids[any_kernel.output][:] = 7.0
        out = reference_time_step(any_kernel, grids)
        assert out[tuple(0 for _ in shape)] == 7.0

    def test_coefficient_override(self):
        kernel = get_kernel("jacobi_2d")
        grids = kernel.make_grids((8, 8), seed=0)
        doubled = reference_time_step(kernel, grids, coefficients={"c0": 0.4})
        baseline = reference_time_step(kernel, grids)
        interior = (slice(1, -1), slice(1, -1))
        assert np.allclose(doubled[interior], 2 * baseline[interior])

    def test_missing_input_rejected(self):
        kernel = get_kernel("ac_iso_cd")
        with pytest.raises(KeyError):
            reference_time_step(kernel, {"u": np.zeros((12, 12, 12))})

    def test_sweep_alternates_buffers(self):
        kernel = get_kernel("jacobi_2d")
        grids = kernel.make_grids((10, 10), seed=4)
        one = reference_time_step(kernel, grids)
        two_manual = reference_time_step(kernel, {"inp": one, "out": one})
        two_sweep = reference_sweep(kernel, grids, steps=2)
        assert np.allclose(two_sweep, two_manual)
