"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ir import Coeff, GridRef, add, mul
from repro.core.kernels import get_kernel
from repro.core.lowering import GridOperand, lower_block
from repro.core.parallel import choose_block, cluster_geometry, coverage
from repro.core.reference import reference_time_step
from repro.core.regalloc import linear_scan, live_intervals
from repro.core.saris import index_width_bytes, map_streams
from repro.core.schedule import schedule_block, verify_schedule
from repro.core.stencil import StencilKernel
from repro.isa.assembler import assemble, parse_instruction
from repro.isa.registers import fp_reg_name, int_reg_name, parse_fp_reg, parse_int_reg
from repro.runner import run_kernel
from repro.snitch.ssr import DataMover
from repro.snitch.tcdm import TCDM

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_reg_index = st.integers(min_value=0, max_value=31)
_imm12 = st.integers(min_value=-2048, max_value=2047)


@st.composite
def random_2d_kernels(draw):
    """Random weighted-sum 2D stencils within a radius-2 window."""
    radius = draw(st.integers(min_value=1, max_value=2))
    num_taps = draw(st.integers(min_value=1, max_value=9))
    offsets = st.tuples(st.integers(-radius, radius), st.integers(-radius, radius))
    taps = draw(st.lists(offsets, min_size=num_taps, max_size=num_taps, unique=True))
    coeffs = {f"c{i}": draw(st.floats(min_value=-2.0, max_value=2.0,
                                      allow_nan=False, allow_infinity=False))
              for i in range(len(taps))}
    expr = add(*[mul(Coeff(f"c{i}"), GridRef("inp", off))
                 for i, off in enumerate(taps)])
    return StencilKernel(name="random2d", dims=2, radius=radius, inputs=["inp"],
                         output="out", expr=expr, coefficients=coeffs)


# ---------------------------------------------------------------------------
# ISA properties
# ---------------------------------------------------------------------------


class TestIsaProperties:
    @given(_reg_index)
    def test_int_register_names_roundtrip(self, idx):
        assert parse_int_reg(int_reg_name(idx)) == idx

    @given(_reg_index)
    def test_fp_register_names_roundtrip(self, idx):
        assert parse_fp_reg(fp_reg_name(idx)) == idx

    @given(rd=_reg_index, rs1=_reg_index, imm=_imm12)
    def test_addi_text_roundtrip(self, rd, rs1, imm):
        text = f"addi {int_reg_name(rd)}, {int_reg_name(rs1)}, {imm}"
        inst = parse_instruction(text)
        assert (inst.rd, inst.rs1, inst.imm) == (rd, rs1, imm)
        assert parse_instruction(inst.to_text()).to_text() == inst.to_text()

    @given(frd=_reg_index, base=_reg_index, imm=_imm12)
    def test_fld_text_roundtrip(self, frd, base, imm):
        text = f"fld {fp_reg_name(frd)}, {imm}({int_reg_name(base)})"
        inst = parse_instruction(text)
        assert (inst.rd, inst.rs1, inst.imm) == (frd, base, imm)

    @given(st.lists(st.sampled_from(["nop", "addi t0, t0, 1", "fadd.d ft3, ft4, ft5"]),
                    min_size=1, max_size=20))
    def test_program_roundtrip(self, lines):
        program = assemble("\n".join(lines))
        again = assemble(program.to_text())
        assert [i.to_text() for i in again] == [i.to_text() for i in program]


# ---------------------------------------------------------------------------
# SSR address generation properties
# ---------------------------------------------------------------------------


class TestSsrProperties:
    @given(bounds=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3),
           strides=st.lists(st.integers(min_value=0, max_value=4), min_size=3, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_affine_stream_matches_nested_loops(self, bounds, strides):
        tcdm = TCDM()
        data = np.arange(2048, dtype=np.float64)
        tcdm.write_f64_array(tcdm.base, data)
        mover = DataMover(2, tcdm, indirect_capable=False)
        dims = len(bounds)
        mover.cfg_dims(dims)
        byte_strides = [s * 8 for s in strides[:dims]]
        for dim, (bound, stride) in enumerate(zip(bounds, byte_strides)):
            mover.cfg_bound(dim, bound)
            mover.cfg_stride(dim, stride)
        mover.cfg_base(tcdm.base)
        mover.start_affine()
        total = int(np.prod(bounds))
        got = []
        for _ in range(100_000):
            tcdm.begin_cycle()
            mover.tick()
            while mover.can_pop():
                got.append(mover.pop())
            if len(got) == total:
                break
        expected = []
        counters = [range(b) for b in bounds]
        import itertools
        for idx in itertools.product(*reversed(counters)):
            idx = tuple(reversed(idx))
            offset = sum(i * s for i, s in zip(idx, strides[:dims]))
            expected.append(float(offset))
        assert got == expected

    @given(st.lists(st.integers(min_value=-200, max_value=200), min_size=1, max_size=16),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_indirect_gather_matches_numpy_take(self, indices, base_elem):
        tcdm = TCDM()
        data = np.arange(4096, dtype=np.float64)
        data_addr = tcdm.base
        tcdm.write_f64_array(data_addr, data)
        idx_addr = tcdm.base + 100 * 1024
        tcdm.write_i16_array(idx_addr, indices)
        mover = DataMover(0, tcdm, indirect_capable=True)
        mover.cfg_indirect(idx_addr, len(indices))
        base_elem = base_elem + 200  # keep base + index in range
        mover.launch(data_addr + base_elem * 8)
        got = []
        for _ in range(100_000):
            tcdm.begin_cycle()
            mover.tick()
            while mover.can_pop():
                got.append(mover.pop())
            if len(got) == len(indices):
                break
        assert got == [float(base_elem + i) for i in indices]

    @given(st.lists(st.integers(min_value=-(1 << 20), max_value=(1 << 20)), max_size=32))
    def test_index_width_covers_all_entries(self, entries):
        width = index_width_bytes(entries)
        assert width in (2, 4)
        if entries and width == 2:
            assert max(abs(e) for e in entries) < (1 << 15)


# ---------------------------------------------------------------------------
# Compiler pipeline properties
# ---------------------------------------------------------------------------


class TestCompilerProperties:
    @given(random_2d_kernels(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lowering_preserves_flops_and_loads(self, kernel, unroll):
        block = lower_block(kernel, unroll=unroll)
        assert block.flops() == unroll * kernel.flops_per_point
        grid_ops = [src for op in block.ops for src in op.srcs
                    if isinstance(src, GridOperand)]
        assert len(grid_ops) == unroll * kernel.loads_per_point

    @given(random_2d_kernels(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_schedule_validity_for_random_kernels(self, kernel, unroll):
        block = lower_block(kernel, unroll=unroll)
        scheduled = schedule_block(block.ops)
        assert verify_schedule(block.ops, scheduled.ops)

    @given(random_2d_kernels())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stream_mapping_covers_all_loads(self, kernel):
        block = lower_block(kernel, unroll=2)
        scheduled = schedule_block(block.ops)
        mapping = map_streams(scheduled.ops, num_coeffs=kernel.coeffs_per_point)
        total = sum(len(seq) for seq in mapping.sr_sequences.values())
        assert total == 2 * kernel.loads_per_point
        assert abs(len(mapping.sr_sequences[0]) - len(mapping.sr_sequences[1])) <= 1

    @given(random_2d_kernels())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_register_allocation_respects_liveness(self, kernel):
        block = lower_block(kernel, unroll=2)
        scheduled = schedule_block(block.ops)
        result = linear_scan(scheduled.ops, list(range(3, 32)))
        if not result.success:
            return
        intervals = live_intervals(scheduled.ops)
        by_reg = {}
        for vreg, reg in result.assignment.items():
            by_reg.setdefault(reg, []).append(intervals[vreg])
        for spans in by_reg.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=16))
    def test_choose_block_divides_count(self, count, limit):
        block = choose_block(count, limit)
        assert 1 <= block <= max(count, 1)
        assert count % block == 0
        assert block <= max(limit, 1)

    @given(random_2d_kernels())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_parallel_coverage_partition(self, kernel):
        shape = (16, 16)
        geometries = cluster_geometry(kernel, shape)
        counts = coverage(geometries)
        assert set(counts.values()) == {1}
        assert len(counts) == kernel.interior_points(shape)


# ---------------------------------------------------------------------------
# End-to-end property: random stencils compile and match NumPy on both paths
# ---------------------------------------------------------------------------


class TestEndToEndProperties:
    @given(random_2d_kernels(), st.sampled_from(["base", "saris"]))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_random_kernels_simulate_correctly(self, kernel, variant):
        result = run_kernel(kernel, variant=variant, tile_shape=(12, 12), seed=5)
        assert result.correct

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_reference_and_simulation_agree_for_any_seed(self, seed):
        kernel = get_kernel("jacobi_2d")
        grids = kernel.make_grids((12, 12), seed=seed % 1000)
        result = run_kernel(kernel, variant="saris", tile_shape=(12, 12),
                            grids=grids)
        assert result.correct
        expected = reference_time_step(kernel, grids)
        assert np.isfinite(expected).all()
