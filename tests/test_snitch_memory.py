"""Tests for the TCDM (banked scratchpad), main memory and allocator."""

import numpy as np
import pytest

from repro.snitch.main_memory import ByteStore, MainMemory, MemoryError_
from repro.snitch.tcdm import TCDM, TcdmAllocator


class TestByteStore:
    def test_typed_roundtrips(self):
        mem = ByteStore(0x1000, 256)
        mem.write_f64(0x1000, 3.25)
        assert mem.read_f64(0x1000) == 3.25
        mem.write_u32(0x1010, 0xDEADBEEF)
        assert mem.read_u32(0x1010) == 0xDEADBEEF
        mem.write_i16(0x1020, -7)
        assert mem.read_i16(0x1020) == -7
        mem.write_u8(0x1030, 200)
        assert mem.read_u8(0x1030) == 200

    def test_signed_i32(self):
        mem = ByteStore(0, 64)
        mem.write_i32(0, -123456)
        assert mem.read_i32(0) == -123456

    def test_array_helpers(self):
        mem = ByteStore(0, 1024)
        data = np.linspace(0.0, 1.0, 16)
        mem.write_f64_array(64, data)
        assert np.array_equal(mem.read_f64_array(64, 16), data)

    def test_i16_array(self):
        mem = ByteStore(0, 256)
        mem.write_i16_array(0, [-1, 2, -3, 4])
        assert [mem.read_i16(i * 2) for i in range(4)] == [-1, 2, -3, 4]

    def test_fill(self):
        mem = ByteStore(0, 256)
        mem.fill_f64(0, 4, 2.5)
        assert np.array_equal(mem.read_f64_array(0, 4), np.full(4, 2.5))

    def test_out_of_range_rejected(self):
        mem = ByteStore(0x1000, 64)
        with pytest.raises(MemoryError_):
            mem.read_f64(0x0FF8)
        with pytest.raises(MemoryError_):
            mem.write_f64(0x1000 + 64 - 4, 1.0)

    def test_contains(self):
        mem = ByteStore(0x100, 16)
        assert mem.contains(0x100, 16)
        assert not mem.contains(0x100, 17)
        assert not mem.contains(0xFF)

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryError_):
            ByteStore(0, 0)


class TestMainMemory:
    def test_default_region(self):
        mem = MainMemory()
        assert mem.contains(0x8000_0000)
        mem.write_f64(0x8000_0000, 1.5)
        assert mem.read_f64(0x8000_0000) == 1.5


class TestTcdmArbitration:
    def test_bank_mapping_is_word_interleaved(self):
        tcdm = TCDM()
        assert tcdm.bank_of(tcdm.base) == 0
        assert tcdm.bank_of(tcdm.base + 8) == 1
        assert tcdm.bank_of(tcdm.base + 8 * 32) == 0

    def test_same_bank_conflicts_within_cycle(self):
        tcdm = TCDM()
        tcdm.begin_cycle()
        assert tcdm.request(tcdm.base)
        assert not tcdm.request(tcdm.base)          # same bank, same cycle
        assert tcdm.request(tcdm.base + 8)          # different bank
        assert tcdm.conflicts == 1

    def test_conflict_clears_next_cycle(self):
        tcdm = TCDM()
        tcdm.begin_cycle()
        assert tcdm.request(tcdm.base)
        tcdm.begin_cycle()
        assert tcdm.request(tcdm.base)

    def test_all_banks_usable_in_one_cycle(self):
        tcdm = TCDM()
        tcdm.begin_cycle()
        grants = [tcdm.request(tcdm.base + 8 * i) for i in range(tcdm.num_banks)]
        assert all(grants)
        assert not tcdm.request(tcdm.base + 8 * tcdm.num_banks)

    def test_conflict_rate_and_reset(self):
        tcdm = TCDM()
        tcdm.begin_cycle()
        tcdm.request(tcdm.base)
        tcdm.request(tcdm.base)
        assert tcdm.conflict_rate == pytest.approx(0.5)
        tcdm.reset_stats()
        assert tcdm.total_requests == 0 and tcdm.conflict_rate == 0.0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            TCDM(num_banks=0)


class TestTcdmAllocator:
    def test_alignment_and_progression(self):
        tcdm = TCDM()
        alloc = TcdmAllocator(tcdm)
        a = alloc.alloc(10, align=8)
        b = alloc.alloc(8, align=8)
        assert a % 8 == 0 and b % 8 == 0 and b >= a + 10
        assert alloc.used >= 18

    def test_alloc_f64(self):
        alloc = TcdmAllocator(TCDM())
        addr = alloc.alloc_f64(16)
        assert addr % 8 == 0

    def test_exhaustion(self):
        alloc = TcdmAllocator(TCDM())
        with pytest.raises(MemoryError):
            alloc.alloc(1 << 30)

    def test_negative_size_rejected(self):
        alloc = TcdmAllocator(TCDM())
        with pytest.raises(ValueError):
            alloc.alloc(-8)

    def test_reset(self):
        tcdm = TCDM()
        alloc = TcdmAllocator(tcdm)
        first = alloc.alloc(64)
        alloc.reset()
        assert alloc.alloc(64) == first
