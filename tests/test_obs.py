"""Unified telemetry: metrics registry, tracing spans, phase profiling.

Unit tests for :mod:`repro.obs` (instruments, Prometheus rendering, span
nesting, the Chrome trace-event export, the ``REPRO_OBS`` kill switch),
integration tests for ``run_kernel`` phase timing (including the contract
that ``phase_seconds`` never enters ``metrics_hash``), queue/latency
telemetry, and the daemon's ``/v1/metrics`` + ``/v1/sweeps/<id>/trace``
endpoints over a real socket.
"""

import json
import time

import pytest

from repro import obs, run_kernel
from repro.runner import KernelRunResult
from tests.conftest import small_tile
from tests.test_service_server import JOB_WIRE, running_server


@pytest.fixture(autouse=True)
def telemetry_on():
    """Every test here runs with telemetry enabled and restores the
    process-wide toggle afterwards."""
    before = obs.enabled()
    obs.set_enabled(True)
    yield
    obs.set_enabled(before)


class TestMetrics:
    def test_counter_is_get_or_create_by_name(self):
        a = obs.counter("test_obs_demo_total", "demo counter")
        b = obs.counter("test_obs_demo_total")
        assert a is b
        before = a.value
        b.inc()
        b.inc(2.5)
        assert a.value == pytest.approx(before + 3.5)

    def test_counter_rejects_negative_and_disabled_is_noop(self):
        c = obs.counter("test_obs_neg_total")
        with pytest.raises(ValueError):
            c.inc(-1)
        obs.set_enabled(False)
        before = c.value
        c.inc(5)
        assert c.value == before

    def test_gauge_callback_and_set(self):
        g = obs.gauge("test_obs_gauge", "demo gauge")
        g.set(4.0)
        assert g.value == 4.0
        g.set_function(lambda: 7.0)
        assert g.value == 7.0
        g.set_function(lambda: 1 / 0)  # dead owner must not break scrapes
        assert g.value == 0.0

    def test_histogram_buckets_and_percentiles(self):
        h = obs.histogram("test_obs_seconds", "demo histogram")
        for value in (0.002, 0.002, 0.02, 1.5):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(1.524)
        # Quantiles are bucket-resolution: the upper bound of the bucket
        # the q-th observation fell into.
        assert snap["p50"] == 0.0025
        assert snap["p95"] == 2.5
        assert sum(snap["counts"]) == 4

    def test_prometheus_rendering(self):
        obs.counter("test_obs_render_total", "a help line").inc(2)
        obs.histogram("test_obs_render_seconds", "latencies").observe(0.01)
        text = obs.render_prometheus()
        assert "# HELP test_obs_render_total a help line" in text
        assert "# TYPE test_obs_render_total counter" in text
        assert "test_obs_render_total 2" in text
        assert "# TYPE test_obs_render_seconds histogram" in text
        assert 'test_obs_render_seconds_bucket{le="+Inf"} 1' in text
        assert "test_obs_render_seconds_count 1" in text
        # Every non-comment line is "name[{labels}] value".
        for line in text.splitlines():
            if line and not line.startswith("#"):
                assert len(line.rsplit(" ", 1)) == 2


class TestSpans:
    def test_span_nesting_and_recording(self):
        with obs.span("outer", attr="x") as outer:
            assert outer is not None
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.span_id != outer.span_id
        spans = obs.peek_spans(outer.trace_id)
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent"] == outer.span_id
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["attrs"]["attr"] == "x"
        assert by_name["outer"]["dur"] >= by_name["inner"]["dur"]
        obs.take_spans(outer.trace_id)

    def test_explicit_parent_beats_ambient(self):
        parent = obs.TraceContext(obs.new_trace_id(), obs.new_span_id())
        with obs.span("child", parent=parent) as child:
            assert child.trace_id == parent.trace_id
        [record] = obs.take_spans(parent.trace_id)
        assert record["parent"] == parent.span_id

    def test_disabled_span_yields_none_and_records_nothing(self):
        obs.set_enabled(False)
        with obs.span("ghost") as ctx:
            assert ctx is None

    def test_wire_roundtrip_and_malformed(self):
        ctx = obs.TraceContext(obs.new_trace_id(), obs.new_span_id())
        assert obs.TraceContext.from_wire(ctx.to_wire()) == ctx
        for bad in (None, "nope", {}, {"trace": "t"}, {"span": "s"},
                    {"trace": 1, "span": 2}, []):
            assert obs.TraceContext.from_wire(bad) is None

    def test_recorder_take_is_destructive_peek_is_not(self):
        with obs.span("once") as ctx:
            pass
        assert len(obs.peek_spans(ctx.trace_id)) == 1
        assert len(obs.peek_spans(ctx.trace_id)) == 1
        assert len(obs.take_spans(ctx.trace_id)) == 1
        assert obs.take_spans(ctx.trace_id) == []

    def test_recorder_eviction_is_bounded(self):
        recorder = obs.SpanRecorder(limit=10)
        for i in range(30):
            recorder.record({"trace": f"t{i}", "span": f"s{i}",
                             "name": "n", "ts": float(i), "dur": 0.0})
        assert len(recorder) <= 10
        assert recorder.peek("t29")  # newest survives

    def test_chrome_trace_export(self):
        spans = [
            {"name": "sweep", "trace": "t", "span": "a", "parent": None,
             "ts": 100.0, "dur": 2.0, "proc": "coordinator", "tid": 1,
             "attrs": {}},
            {"name": "attempt", "trace": "t", "span": "b", "parent": "a",
             "ts": 100.5, "dur": 1.0, "proc": "w1", "tid": 2,
             "attrs": {"job": "x"}},
        ]
        document = obs.chrome_trace(spans)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"coordinator", "w1"}
        assert len(slices) == 2
        assert slices[0]["ts"] <= slices[1]["ts"]
        attempt = next(e for e in slices if e["name"] == "attempt")
        assert attempt["dur"] == pytest.approx(1.0e6)
        assert attempt["args"]["parent"] == "a"
        assert attempt["pid"] != slices[0]["pid"] or \
            slices[0]["name"] == "attempt"
        json.dumps(document)  # must be serializable as-is


class TestPhases:
    def test_phase_accumulates_into_active_accumulator(self):
        with obs.phase_accumulator() as phases:
            with obs.phase("alpha"):
                time.sleep(0.002)
            with obs.phase("alpha"):
                pass
            with obs.phase("beta.sub"):
                pass
        assert phases["alpha"] >= 0.002
        assert "beta.sub" in phases

    def test_phase_without_accumulator_is_noop(self):
        with obs.phase("orphan"):
            pass  # must not raise

    def test_disabled_accumulator_is_empty(self):
        obs.set_enabled(False)
        with obs.phase_accumulator() as phases:
            with obs.phase("alpha"):
                pass
        assert phases == {}


class TestRunnerPhaseProfile:
    def test_run_kernel_phase_seconds_shape_and_sum(self):
        start = time.perf_counter()
        result = run_kernel("jacobi_2d", variant="base",
                            tile_shape=small_tile("jacobi_2d"))
        wall = time.perf_counter() - start
        phases = result.phase_seconds
        assert {"codegen", "setup", "simulate", "verify",
                "other"} <= set(phases)
        top = sum(v for k, v in phases.items() if "." not in k)
        # The top-level phases partition run_kernel's own wall time.
        assert top == pytest.approx(wall, rel=0.10, abs=0.05)
        assert all(v >= 0.0 for v in phases.values())

    def test_phase_seconds_never_enters_metrics_hash(self):
        tile = small_tile("jacobi_2d")
        with_obs = run_kernel("jacobi_2d", variant="base", tile_shape=tile)
        obs.set_enabled(False)
        without = run_kernel("jacobi_2d", variant="base", tile_shape=tile)
        obs.set_enabled(True)
        assert with_obs.phase_seconds and not without.phase_seconds
        assert with_obs.metrics_hash() == without.metrics_hash()

    def test_phase_seconds_serialization_roundtrip(self):
        result = run_kernel("jacobi_2d", variant="base",
                            tile_shape=small_tile("jacobi_2d"))
        payload = result.to_json_dict()
        assert payload["phase_seconds"] == result.phase_seconds
        back = KernelRunResult.from_json_dict(payload)
        assert back.phase_seconds == result.phase_seconds
        assert back.metrics_hash() == result.metrics_hash()

    def test_disabled_run_omits_phase_seconds_from_json(self):
        obs.set_enabled(False)
        result = run_kernel("jacobi_2d", variant="base",
                            tile_shape=small_tile("jacobi_2d"))
        assert result.phase_seconds == {}
        assert "phase_seconds" not in result.to_json_dict()


class TestServiceTelemetry:
    def test_metrics_endpoint_and_latency_percentiles(self):
        with running_server() as (service, client):
            before = client.metrics()
            assert "# TYPE repro_queue_submitted_total counter" in before
            receipt = client.submit({"jobs": [JOB_WIRE]})
            final = client.wait(receipt["sweep"])
            assert final["counts"]["done"] == 1
            text = client.metrics()
            assert "repro_queue_executed_total" in text
            assert 'repro_queue_wait_seconds_bucket{le="+Inf"}' in text
            stats = client.stats()
            assert "metrics" in stats
            latency = stats["queue"]["latency"]
            assert latency["queue"]["count"] >= 1
            assert latency["exec"]["p50"] is not None
            assert latency["exec"]["p95"] >= latency["exec"]["p50"]
            # Sweep status carries its own trace id and latency summary.
            sweep = client.sweep(receipt["sweep"])
            assert sweep["trace"]
            assert sweep["latency"]["exec"]["count"] == 1

    def test_events_carry_wall_and_monotonic_timestamps(self):
        with running_server() as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            events = list(client.events(receipt["sweep"]))
            assert events
            for event in events:
                assert event["ts"] > 0
                assert event["ts_mono"] > 0
            monos = [e["ts_mono"] for e in events]
            assert monos == sorted(monos)

    def test_trace_endpoint_returns_parented_spans(self):
        with running_server() as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            client.wait(receipt["sweep"])
            payload = client.trace(receipt["sweep"])
            assert payload["sweep"] == receipt["sweep"]
            assert payload["trace"] == client.sweep(receipt["sweep"])["trace"]
            spans = payload["spans"]
            assert spans and all(s["trace"] == payload["trace"]
                                 for s in spans)
            by_name = {}
            for span in spans:
                by_name.setdefault(span["name"], []).append(span)
            [root] = by_name["sweep"]
            assert root["parent"] is None
            [submit] = by_name["submit"]
            assert submit["parent"] == root["span"]
            [attempt] = by_name["attempt"]
            assert attempt["parent"] == submit["span"]

    def test_trace_endpoint_404_on_unknown_sweep(self):
        with running_server() as (service, client):
            with pytest.raises(Exception) as err:
                client.trace("s9999-nope")
            assert getattr(err.value, "status", None) == 404

    def test_disabled_telemetry_sweeps_have_no_trace(self):
        obs.set_enabled(False)
        with running_server() as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            final = client.wait(receipt["sweep"])
            assert final["state"] == "done"
            assert final["trace"] is None
            assert client.trace(receipt["sweep"])["spans"] == []
