"""Tests for the deterministic fault-injection harness (repro.sweep.faults)."""

import os

import pytest

from repro.sweep import SweepJob
from repro.sweep.faults import (
    DEFAULT_HANG_SECONDS,
    FAULT_ENV_VAR,
    FaultConfigError,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    active_injector,
    injected,
    maybe_inject,
)
from repro.sweep import faults as faults_mod
from tests.conftest import small_tile


def small_job(kernel="jacobi_2d", variant="saris", **kwargs):
    return SweepJob.make(kernel, variant, tile_shape=small_tile(kernel),
                         **kwargs)


class TestSpecParsing:
    def test_full_spec_round_trip(self):
        spec = FaultSpec.parse("kernel=jacobi_2d:variant=saris:mode=flaky:n=2")
        assert spec == FaultSpec(mode="flaky", kernel="jacobi_2d",
                                 variant="saris", n=2)

    def test_mode_only_is_a_wildcard(self):
        spec = FaultSpec.parse("mode=raise")
        assert spec.kernel is None and spec.variant is None and spec.seed is None

    def test_numeric_fields(self):
        spec = FaultSpec.parse("mode=hang:seed=3:hang_seconds=1.5")
        assert spec.seed == 3 and spec.hang_seconds == 1.5
        assert FaultSpec.parse("mode=hang").hang_seconds == DEFAULT_HANG_SECONDS

    def test_missing_mode_rejected(self):
        with pytest.raises(FaultConfigError, match="missing mode"):
            FaultSpec.parse("kernel=gemm")

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultConfigError, match="mode must be one of"):
            FaultSpec.parse("mode=explode")

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown key"):
            FaultSpec.parse("mode=raise:color=red")

    def test_malformed_pair_rejected(self):
        with pytest.raises(FaultConfigError, match="key=value"):
            FaultSpec.parse("mode=raise:oops")

    def test_bad_engine_filter_rejected(self):
        with pytest.raises(FaultConfigError, match="engine filter"):
            FaultSpec(mode="raise", engine="cuda")

    def test_multi_spec_injector(self):
        injector = FaultInjector.parse(
            "mode=raise:kernel=jacobi_2d; mode=flaky:kernel=j2d5pt:n=3")
        assert len(injector.specs) == 2
        assert injector.specs[1].n == 3

    def test_empty_injector_rejected(self):
        with pytest.raises(FaultConfigError, match="no fault specs"):
            FaultInjector.parse(" ; ")


class TestMatching:
    def test_filters_apply(self):
        spec = FaultSpec(mode="raise", kernel="jacobi_2d", variant="saris")
        assert spec.matches(small_job())
        assert not spec.matches(small_job(variant="base"))
        assert not spec.matches(small_job(kernel="j2d5pt"))

    def test_seed_filter(self):
        spec = FaultSpec(mode="raise", seed=7)
        assert spec.matches(small_job(seed=7))
        assert not spec.matches(small_job(seed=0))

    def test_engine_native_filter_skips_forced_python(self):
        from repro.snitch import native

        spec = FaultSpec(mode="raise", engine="native")
        assert spec.matches(small_job())
        with native.forced_python():
            assert not spec.matches(small_job())


class TestFiring:
    def test_no_injector_is_a_noop(self):
        assert active_injector() is None
        maybe_inject(small_job())  # must not raise

    def test_raise_mode(self):
        with injected(FaultSpec(mode="raise", kernel="jacobi_2d")):
            with pytest.raises(InjectedFault, match="injected failure"):
                maybe_inject(small_job())
            maybe_inject(small_job(kernel="j2d5pt"))  # non-matching: clean

    def test_flaky_counts_attempts(self):
        with injected(FaultSpec(mode="flaky", kernel="jacobi_2d", n=2)):
            for attempt in (1, 2):
                with pytest.raises(InjectedFault, match="flaky"):
                    maybe_inject(small_job(), attempt=attempt)
            maybe_inject(small_job(), attempt=3)  # succeeds past n

    def test_hang_is_bounded_and_raises(self):
        with injected(FaultSpec(mode="hang", kernel="jacobi_2d",
                                hang_seconds=0.05)):
            with pytest.raises(InjectedFault, match="hang"):
                maybe_inject(small_job())

    def test_segfault_degrades_to_raise_in_process(self):
        # Outside a pool worker the injected segfault must NOT kill the
        # interpreter (the test session!) — it degrades to InjectedFault.
        with injected(FaultSpec(mode="segfault", kernel="jacobi_2d")):
            with pytest.raises(InjectedFault, match="segfault"):
                maybe_inject(small_job())

    def test_installed_injector_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "mode=raise")
        with injected(FaultSpec(mode="raise", kernel="no_such_kernel")):
            maybe_inject(small_job())  # installed spec does not match: clean

    def test_env_injector_parsed_and_memoized(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "mode=raise:kernel=jacobi_2d")
        assert active_injector() is active_injector()
        with pytest.raises(InjectedFault):
            maybe_inject(small_job())
        monkeypatch.delenv(FAULT_ENV_VAR)
        assert active_injector() is None

    def test_first_matching_spec_wins(self):
        with injected(FaultSpec(mode="flaky", kernel="jacobi_2d", n=1),
                      FaultSpec(mode="raise", kernel="jacobi_2d")):
            maybe_inject(small_job(), attempt=2)  # flaky satisfied, stops


class TestNodeFaults:
    """Fabric-level modes: worker_kill, lease_stall, net_drop + the
    cross-process at-most-n token accounting behind them."""

    def test_node_mode_specs_parse(self):
        for mode in ("worker_kill", "lease_stall", "net_drop"):
            spec = FaultSpec.parse(f"mode={mode}:n=3")
            assert spec.mode == mode and spec.n == 3

    def test_worker_kill_degrades_to_raise_in_parent(self, monkeypatch):
        # Never a real os._exit outside a worker process: the test session
        # must survive a misconfigured env.
        monkeypatch.delenv(faults_mod.FABRIC_WORKER_ENV_VAR, raising=False)
        monkeypatch.delenv(faults_mod.STATE_ENV_VAR, raising=False)
        monkeypatch.setattr(faults_mod, "_LOCAL_TOKENS", {})
        with injected(FaultSpec(mode="worker_kill", kernel="jacobi_2d")):
            with pytest.raises(InjectedFault, match="worker kill"):
                maybe_inject(small_job())
            # The single token is spent: the next firing runs clean.
            maybe_inject(small_job())

    def test_protocol_modes_are_inert_inside_jobs(self, monkeypatch):
        monkeypatch.delenv(faults_mod.STATE_ENV_VAR, raising=False)
        with injected(FaultSpec(mode="lease_stall"),
                      FaultSpec(mode="net_drop")):
            maybe_inject(small_job())  # must not raise, sleep or exit

    def test_claim_node_fault_checks_mode_and_match(self, monkeypatch):
        monkeypatch.delenv(faults_mod.STATE_ENV_VAR, raising=False)
        monkeypatch.setattr(faults_mod, "_LOCAL_TOKENS", {})
        with pytest.raises(FaultConfigError):
            faults_mod.claim_node_fault("raise")
        assert faults_mod.claim_node_fault("net_drop") is None  # inactive
        with injected(FaultSpec(mode="lease_stall", kernel="j2d5pt")):
            assert faults_mod.claim_node_fault("lease_stall",
                                               small_job()) is None
            spec = faults_mod.claim_node_fault("lease_stall",
                                               small_job(kernel="j2d5pt"))
            assert spec is not None and spec.mode == "lease_stall"

    def test_state_dir_tokens_are_claimed_at_most_n_times(
            self, monkeypatch, tmp_path):
        monkeypatch.setenv(faults_mod.STATE_ENV_VAR, str(tmp_path))
        spec = FaultSpec(mode="worker_kill", n=2)
        assert faults_mod.claim_fault_token(spec) is True
        assert faults_mod.claim_fault_token(spec) is True
        assert faults_mod.claim_fault_token(spec) is False  # exhausted
        fired = sorted(p.name for p in tmp_path.iterdir())
        assert fired == ["worker_kill-1.fired", "worker_kill-2.fired"]
        # The claim is per-spec-identity: a differently-filtered spec has
        # its own token pool in the same directory.
        other = FaultSpec(mode="worker_kill", kernel="jacobi_2d")
        assert faults_mod.claim_fault_token(other) is True
        assert faults_mod.claim_fault_token(other) is False

    def test_state_dir_tokens_hold_across_processes(self, monkeypatch,
                                                    tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        monkeypatch.setenv(faults_mod.STATE_ENV_VAR, str(tmp_path))
        child = (
            "from repro.sweep.faults import FaultSpec, claim_fault_token\n"
            "print(claim_fault_token(FaultSpec(mode='worker_kill')))\n"
        )
        repo_root = Path(__file__).resolve().parents[1]
        env = dict(os.environ, PYTHONPATH=str(repo_root / "src"),
                   **{faults_mod.STATE_ENV_VAR: str(tmp_path)})
        outputs = []
        for _ in range(3):
            outputs.append(subprocess.run(
                [sys.executable, "-c", child], env=env, cwd=str(repo_root),
                capture_output=True, text=True, timeout=60).stdout.strip())
        # n=1: exactly one process across the fleet wins the token.
        assert sorted(outputs) == ["False", "False", "True"]
