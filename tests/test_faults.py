"""Tests for the deterministic fault-injection harness (repro.sweep.faults)."""

import os

import pytest

from repro.sweep import SweepJob
from repro.sweep.faults import (
    DEFAULT_HANG_SECONDS,
    FAULT_ENV_VAR,
    FaultConfigError,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    active_injector,
    injected,
    maybe_inject,
)
from tests.conftest import small_tile


def small_job(kernel="jacobi_2d", variant="saris", **kwargs):
    return SweepJob.make(kernel, variant, tile_shape=small_tile(kernel),
                         **kwargs)


class TestSpecParsing:
    def test_full_spec_round_trip(self):
        spec = FaultSpec.parse("kernel=jacobi_2d:variant=saris:mode=flaky:n=2")
        assert spec == FaultSpec(mode="flaky", kernel="jacobi_2d",
                                 variant="saris", n=2)

    def test_mode_only_is_a_wildcard(self):
        spec = FaultSpec.parse("mode=raise")
        assert spec.kernel is None and spec.variant is None and spec.seed is None

    def test_numeric_fields(self):
        spec = FaultSpec.parse("mode=hang:seed=3:hang_seconds=1.5")
        assert spec.seed == 3 and spec.hang_seconds == 1.5
        assert FaultSpec.parse("mode=hang").hang_seconds == DEFAULT_HANG_SECONDS

    def test_missing_mode_rejected(self):
        with pytest.raises(FaultConfigError, match="missing mode"):
            FaultSpec.parse("kernel=gemm")

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultConfigError, match="mode must be one of"):
            FaultSpec.parse("mode=explode")

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown key"):
            FaultSpec.parse("mode=raise:color=red")

    def test_malformed_pair_rejected(self):
        with pytest.raises(FaultConfigError, match="key=value"):
            FaultSpec.parse("mode=raise:oops")

    def test_bad_engine_filter_rejected(self):
        with pytest.raises(FaultConfigError, match="engine filter"):
            FaultSpec(mode="raise", engine="cuda")

    def test_multi_spec_injector(self):
        injector = FaultInjector.parse(
            "mode=raise:kernel=jacobi_2d; mode=flaky:kernel=j2d5pt:n=3")
        assert len(injector.specs) == 2
        assert injector.specs[1].n == 3

    def test_empty_injector_rejected(self):
        with pytest.raises(FaultConfigError, match="no fault specs"):
            FaultInjector.parse(" ; ")


class TestMatching:
    def test_filters_apply(self):
        spec = FaultSpec(mode="raise", kernel="jacobi_2d", variant="saris")
        assert spec.matches(small_job())
        assert not spec.matches(small_job(variant="base"))
        assert not spec.matches(small_job(kernel="j2d5pt"))

    def test_seed_filter(self):
        spec = FaultSpec(mode="raise", seed=7)
        assert spec.matches(small_job(seed=7))
        assert not spec.matches(small_job(seed=0))

    def test_engine_native_filter_skips_forced_python(self):
        from repro.snitch import native

        spec = FaultSpec(mode="raise", engine="native")
        assert spec.matches(small_job())
        with native.forced_python():
            assert not spec.matches(small_job())


class TestFiring:
    def test_no_injector_is_a_noop(self):
        assert active_injector() is None
        maybe_inject(small_job())  # must not raise

    def test_raise_mode(self):
        with injected(FaultSpec(mode="raise", kernel="jacobi_2d")):
            with pytest.raises(InjectedFault, match="injected failure"):
                maybe_inject(small_job())
            maybe_inject(small_job(kernel="j2d5pt"))  # non-matching: clean

    def test_flaky_counts_attempts(self):
        with injected(FaultSpec(mode="flaky", kernel="jacobi_2d", n=2)):
            for attempt in (1, 2):
                with pytest.raises(InjectedFault, match="flaky"):
                    maybe_inject(small_job(), attempt=attempt)
            maybe_inject(small_job(), attempt=3)  # succeeds past n

    def test_hang_is_bounded_and_raises(self):
        with injected(FaultSpec(mode="hang", kernel="jacobi_2d",
                                hang_seconds=0.05)):
            with pytest.raises(InjectedFault, match="hang"):
                maybe_inject(small_job())

    def test_segfault_degrades_to_raise_in_process(self):
        # Outside a pool worker the injected segfault must NOT kill the
        # interpreter (the test session!) — it degrades to InjectedFault.
        with injected(FaultSpec(mode="segfault", kernel="jacobi_2d")):
            with pytest.raises(InjectedFault, match="segfault"):
                maybe_inject(small_job())

    def test_installed_injector_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "mode=raise")
        with injected(FaultSpec(mode="raise", kernel="no_such_kernel")):
            maybe_inject(small_job())  # installed spec does not match: clean

    def test_env_injector_parsed_and_memoized(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "mode=raise:kernel=jacobi_2d")
        assert active_injector() is active_injector()
        with pytest.raises(InjectedFault):
            maybe_inject(small_job())
        monkeypatch.delenv(FAULT_ENV_VAR)
        assert active_injector() is None

    def test_first_matching_spec_wins(self):
        with injected(FaultSpec(mode="flaky", kernel="jacobi_2d", n=1),
                      FaultSpec(mode="raise", kernel="jacobi_2d")):
            maybe_inject(small_job(), attempt=2)  # flaky satisfied, stops
