"""Queue-core semantics: dedupe, coalescing, cancel, event ordering.

Most tests drive :class:`repro.service.queue.JobQueue` with a pluggable
runner (no simulations) so they pin down *queue* behaviour precisely; a
few run real small-tile simulations to prove the default supervised path
produces genuine results and persists them.

There is no pytest-asyncio in the image, so every test owns its loop via
``asyncio.run``.
"""

import asyncio
import threading

import pytest

from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobQueue,
    QueueError,
)
from repro.sweep import ResultStore, SweepJob, execute_job
from tests.conftest import small_tile


def job_for(kernel="jacobi_2d", variant="base", **kwargs):
    return SweepJob.make(kernel, variant, tile_shape=small_tile(kernel),
                         **kwargs)


def fake_result(job):
    """A cheap but real KernelRunResult for runner-injected tests."""
    return execute_job(job_for())


async def drain(queue, sweep_id, from_index=0):
    """Collect the sweep's whole event stream (ends at sweep_done)."""
    return [event async for _i, event in queue.subscribe(sweep_id,
                                                         from_index)]


def kinds(events):
    return [event["event"] for event in events]


class TestEventOrdering:
    def test_submitted_running_progress_done_sweep_done(self):
        async def main():
            queue = await JobQueue(workers=1).start()
            try:
                sweep = await queue.submit([job_for()])
                return await drain(queue, sweep.id)
            finally:
                await queue.close()

        events = asyncio.run(main())
        seen = kinds(events)
        assert seen[0] == "submitted"
        assert seen[1] == "running"
        assert "progress" in seen
        assert seen[-2] == "done"
        assert seen[-1] == "sweep_done"
        # Ordering constraints, not just membership.
        assert seen.index("running") < seen.index("progress") < \
            seen.index("done")
        done = events[seen.index("done")]
        assert done["metrics"]["correct"] is True
        assert done["source"] == "executed"
        # Events carry a global monotonic sequence number.
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)

    def test_subscribe_from_index_skips_replayed_history(self):
        async def main():
            queue = await JobQueue(workers=1).start()
            try:
                sweep = await queue.submit([job_for()])
                full = await drain(queue, sweep.id)
                resumed = await drain(queue, sweep.id, from_index=2)
                return full, resumed
            finally:
                await queue.close()

        full, resumed = asyncio.run(main())
        assert resumed == full[2:]

    def test_replay_past_end_of_finished_sweep_ends_immediately(self):
        """A resume cursor beyond a finished sweep's log must return, not
        await events that can never come (a reconnecting client may ask
        from one past the final sweep_done index)."""
        async def main():
            queue = await JobQueue(workers=1).start()
            try:
                sweep = await queue.submit([job_for()])
                full = await drain(queue, sweep.id)
                past_end = await asyncio.wait_for(
                    drain(queue, sweep.id, from_index=len(full) + 50),
                    timeout=5)
                at_end = await asyncio.wait_for(
                    drain(queue, sweep.id, from_index=len(full)), timeout=5)
                return past_end, at_end
            finally:
                await queue.close()

        past_end, at_end = asyncio.run(main())
        assert past_end == [] and at_end == []


class TestDedupe:
    def test_duplicate_hashes_within_one_submission_collapse(self):
        async def main():
            queue = await JobQueue(workers=1).start()
            try:
                sweep = await queue.submit([job_for(), job_for()])
                await drain(queue, sweep.id)
                return queue.sweep_status(sweep.id), queue.stats()
            finally:
                await queue.close()

        status, stats = asyncio.run(main())
        assert len(status["jobs"]) == 1
        assert stats["executed"] == 1

    def test_memo_hit_after_done_in_same_queue(self):
        async def main():
            queue = await JobQueue(workers=1).start()
            try:
                first = await queue.submit([job_for()])
                await drain(queue, first.id)
                second = await queue.submit([job_for()])
                events = await drain(queue, second.id)
                return (queue.sweep_status(second.id), events,
                        queue.stats())
            finally:
                await queue.close()

        status, events, stats = asyncio.run(main())
        assert status["cache_hits"] == 1 and status["state"] == DONE
        assert kinds(events) == ["submitted", "done", "sweep_done"]
        assert events[0]["source"] == "memo"
        assert stats["executed"] == 1  # the memo hit simulated nothing

    def test_store_hit_on_fresh_queue_zero_simulations(self, tmp_path):
        """Server restart with a warm store: pure cache hit, no execution."""
        job = job_for()

        async def cold():
            queue = await JobQueue(store=ResultStore(tmp_path),
                                   workers=1).start()
            try:
                sweep = await queue.submit([job])
                await drain(queue, sweep.id)
                return queue.stats()
            finally:
                await queue.close()

        async def warm():
            boom = pytest.fail  # a simulation here would be a regression

            def runner(_job, _report):
                boom("warm restart must not simulate")

            queue = await JobQueue(store=ResultStore(tmp_path), workers=1,
                                   runner=runner).start()
            try:
                sweep = await queue.submit([job])
                events = await drain(queue, sweep.id)
                return queue.sweep_status(sweep.id), events, queue.stats()
            finally:
                await queue.close()

        cold_stats = asyncio.run(cold())
        assert cold_stats["executed"] == 1
        status, events, stats = asyncio.run(warm())
        assert status["state"] == DONE and status["cache_hits"] == 1
        assert stats["executed"] == 0 and stats["cache_hits"] == 1
        assert kinds(events) == ["submitted", "done", "sweep_done"]
        assert events[1]["source"] == "store"


class TestCoalescing:
    def test_inflight_submissions_share_one_execution(self):
        release = threading.Event()
        runs = []

        def runner(job, report):
            runs.append(job.content_hash())
            release.wait(timeout=30)
            return fake_result(job)

        async def main():
            queue = await JobQueue(workers=1, runner=runner).start()
            try:
                first = await queue.submit([job_for()])
                # Let the worker pick the job up and block inside runner.
                while not runs:
                    await asyncio.sleep(0.01)
                second = await queue.submit([job_for()])
                assert queue.sweep_status(second.id)["coalesced"] == 1
                release.set()
                events_a = await drain(queue, first.id)
                events_b = await drain(queue, second.id)
                return events_a, events_b, queue.stats()
            finally:
                release.set()
                await queue.close()

        events_a, events_b, stats = asyncio.run(main())
        assert len(runs) == 1  # one execution served both sweeps
        assert stats["executed"] == 1 and stats["coalesced"] == 1
        assert kinds(events_a)[-2:] == ["done", "sweep_done"]
        # The coalesced subscriber still sees a full lifecycle.
        assert kinds(events_b)[0] == "submitted"
        assert "running" in kinds(events_b)
        assert kinds(events_b)[-2:] == ["done", "sweep_done"]
        assert events_b[0]["source"] == "coalesced"


class TestCancel:
    def test_cancel_queued_job_and_flag_running_one(self):
        release = threading.Event()
        started = threading.Event()

        def runner(job, report):
            started.set()
            release.wait(timeout=30)
            return fake_result(job)

        async def main():
            queue = await JobQueue(workers=1, runner=runner).start()
            try:
                running = job_for("jacobi_2d")
                queued = job_for("j2d5pt")
                sweep = await queue.submit([running, queued])
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30)
                receipt = queue.cancel(sweep.id)
                release.set()
                events = await drain(queue, sweep.id)
                return (receipt, events, queue.sweep_status(sweep.id),
                        queue.job_status(running.content_hash()),
                        queue.job_status(queued.content_hash()))
            finally:
                release.set()
                await queue.close()

        receipt, events, status, running_job, queued_job = asyncio.run(main())
        assert receipt["cancelled_jobs"] == [queued_job["hash"]]
        assert receipt["still_running"] == [running_job["hash"]]
        assert queued_job["state"] == CANCELLED
        assert running_job["cancel_requested"] is True
        assert status["state"] == CANCELLED
        seen = kinds(events)
        assert "sweep_cancelled" in seen
        assert seen[-1] == "sweep_done"
        assert events[-1]["state"] == CANCELLED

    def test_cancel_is_idempotent_and_unknown_raises(self):
        async def main():
            queue = await JobQueue(workers=1).start()
            try:
                sweep = await queue.submit([job_for()])
                await drain(queue, sweep.id)
                first = queue.cancel(sweep.id)
                second = queue.cancel(sweep.id)
                with pytest.raises(KeyError):
                    queue.cancel("s9999-deadbeef")
                return first, second
            finally:
                await queue.close()

        first, second = asyncio.run(main())
        # Cancelling a finished sweep cancels nothing (jobs are terminal).
        assert first["cancelled_jobs"] == [] == second["cancelled_jobs"]

    def test_cancel_racing_coalesced_inflight_job(self):
        """Cancel of sweep A while its job is RUNNING *and* coalesced into
        sweep B: the in-flight execution survives, B gets the result, and
        nothing is double-counted."""
        release = threading.Event()
        started = threading.Event()

        def runner(job, report):
            started.set()
            release.wait(timeout=30)
            return fake_result(job)

        async def main():
            queue = await JobQueue(workers=1, runner=runner).start()
            try:
                job = job_for()
                first = await queue.submit([job])
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30)
                second = await queue.submit([job])  # coalesces onto RUNNING
                receipt = queue.cancel(first.id)    # races the execution
                release.set()
                events_b = await drain(queue, second.id)
                events_a = await drain(queue, first.id)
                return (receipt, events_a, events_b,
                        queue.sweep_status(second.id),
                        queue.job_status(job.content_hash()), queue.stats())
            finally:
                release.set()
                await queue.close()

        receipt, events_a, events_b, status_b, job_status, stats = \
            asyncio.run(main())
        # The cancel could not abort the in-flight job, only flag it.
        assert receipt["cancelled_jobs"] == []
        assert receipt["still_running"] == [job_status["hash"]]
        # The shared execution completed for sweep B's benefit.
        assert job_status["state"] == DONE
        assert status_b["state"] == DONE
        assert kinds(events_b)[-2:] == ["done", "sweep_done"]
        # Sweep A ended as cancelled, with a full terminating stream.
        assert "sweep_cancelled" in kinds(events_a)
        assert kinds(events_a)[-1] == "sweep_done"
        assert events_a[-1]["state"] == CANCELLED
        assert stats["executed"] == 1 and stats["coalesced"] == 1
        assert stats["cancelled"] == 0  # no job was actually cancelled

    def test_shared_queued_job_survives_other_tenants_cancel(self):
        release = threading.Event()
        started = threading.Event()

        def runner(job, report):
            started.set()
            release.wait(timeout=30)
            return fake_result(job)

        async def main():
            queue = await JobQueue(workers=1, runner=runner).start()
            try:
                blocker = job_for("jacobi_2d")
                shared = job_for("j2d5pt")
                victim = await queue.submit([blocker, shared])
                survivor = await queue.submit([shared])
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30)
                queue.cancel(victim.id)
                # The shared job must still be queued: the survivor sweep
                # legitimately owns it.
                state = queue.job_status(shared.content_hash())["state"]
                release.set()
                events = await drain(queue, survivor.id)
                return state, events, queue.sweep_status(survivor.id)
            finally:
                release.set()
                await queue.close()

        state, events, status = asyncio.run(main())
        assert state == QUEUED
        assert status["state"] == DONE
        assert kinds(events)[-2:] == ["done", "sweep_done"]


class TestFailures:
    def test_failed_job_fans_structured_error(self):
        def runner(job, report):
            raise ValueError("synthetic runner explosion")

        async def main():
            queue = await JobQueue(workers=1, runner=runner).start()
            try:
                sweep = await queue.submit([job_for()])
                events = await drain(queue, sweep.id)
                return events, queue.sweep_status(sweep.id), queue.stats()
            finally:
                await queue.close()

        events, status, stats = asyncio.run(main())
        assert status["state"] == FAILED
        assert status["counts"][FAILED] == 1
        assert stats["failed"] == 1
        failed = events[kinds(events).index("failed")]
        assert failed["error"]["error_type"] == "ValueError"
        assert "synthetic runner explosion" in failed["error"]["message"]
        assert kinds(events)[-1] == "sweep_done"
        assert events[-1]["state"] == FAILED

    def test_failed_jobs_are_not_memoized(self):
        calls = []

        def runner(job, report):
            calls.append(1)
            if len(calls) == 1:
                raise ValueError("first time fails")
            return fake_result(job)

        async def main():
            queue = await JobQueue(workers=1, runner=runner).start()
            try:
                first = await queue.submit([job_for()])
                await drain(queue, first.id)
                second = await queue.submit([job_for()])
                await drain(queue, second.id)
                return queue.sweep_status(second.id)
            finally:
                await queue.close()

        status = asyncio.run(main())
        assert len(calls) == 2  # resubmit re-executed, no poisoned cache
        assert status["state"] == DONE and status["cache_hits"] == 0


class TestLifecycleAndStats:
    def test_submit_before_start_or_after_close_raises(self):
        async def main():
            queue = JobQueue(workers=1)
            with pytest.raises(QueueError):
                await queue.submit([job_for()])
            await queue.start()
            with pytest.raises(QueueError):
                await queue.start()  # double start
            with pytest.raises(QueueError):
                await queue.submit([])  # empty sweep
            await queue.close()
            with pytest.raises(QueueError):
                await queue.submit([job_for()])

        asyncio.run(main())

    def test_stats_counts_states_and_progress_report_from_thread(self):
        def runner(job, report):
            report("warmup", step=1)
            return fake_result(job)

        async def main():
            queue = await JobQueue(workers=2, runner=runner).start()
            try:
                sweep = await queue.submit([job_for("jacobi_2d"),
                                            job_for("j2d5pt")])
                events = await drain(queue, sweep.id)
                return events, queue.stats()
            finally:
                await queue.close()

        events, stats = asyncio.run(main())
        progress = [event for event in events
                    if event["event"] == "progress"
                    and event.get("phase") == "warmup"]
        assert len(progress) == 2 and progress[0]["step"] == 1
        assert stats["jobs"] == 2 and stats["sweeps"] == 1
        assert stats["states"][DONE] == 2
        assert stats["states"][RUNNING] == 0 and stats["pending"] == 0

    def test_default_runner_persists_to_store(self, tmp_path):
        async def main():
            store = ResultStore(tmp_path)
            queue = await JobQueue(store=store, workers=1).start()
            try:
                job = job_for()
                sweep = await queue.submit([job])
                await drain(queue, sweep.id)
                return store.load(job)
            finally:
                await queue.close()

        loaded = asyncio.run(main())
        assert loaded is not None and loaded.correct


class TestFabricDispatch:
    def test_invalid_dispatch_rejected(self):
        with pytest.raises(QueueError):
            JobQueue(dispatch="carrier-pigeon")

    def test_fabric_dispatch_spawns_no_local_lanes(self):
        """In fabric mode the queue is a pure state machine: submitted jobs
        stay queued until a coordinator leases them out."""
        async def main():
            queue = await JobQueue(dispatch="fabric").start()
            try:
                sweep = await queue.submit([job_for()])
                await asyncio.sleep(0.2)
                return (queue.sweep_status(sweep.id), queue.stats(),
                        len(queue._tasks))
            finally:
                await queue.close()

        status, stats, lanes = asyncio.run(main())
        assert lanes == 0
        assert stats["dispatch"] == "fabric"
        assert status["state"] == QUEUED
        assert stats["states"][QUEUED] == 1 and stats["executed"] == 0
