"""Wire-format tests: JSON payloads -> normalized SweepJob lists."""

import pytest

from repro.machine import MachineSpec, resolve_machine
from repro.service import SpecError, job_from_wire, jobs_from_payload
from repro.service.spec import (
    experiment_from_wire,
    experiment_to_wire,
    machine_from_wire,
)
from repro.sweep import SweepJob
from tests.conftest import small_tile


class TestJobFromWire:
    def test_minimal_job_defaults(self):
        job = job_from_wire({"kernel": "jacobi_2d"})
        assert job == SweepJob.make("jacobi_2d")
        assert job.variant == "saris" and job.seed == 0

    def test_full_job_roundtrips_content_hash(self):
        wire = {"kernel": "j3d27pt", "variant": "base",
                "tile_shape": list(small_tile("j3d27pt")), "seed": 3,
                "check": False, "max_cycles": 123456,
                "machine": "snitch-4",
                "codegen_kwargs": {"use_frep": True}}
        job = job_from_wire(wire)
        direct = SweepJob.make("j3d27pt", "base",
                               tile_shape=small_tile("j3d27pt"), seed=3,
                               check=False, max_cycles=123456,
                               machine=resolve_machine("snitch-4"),
                               use_frep=True)
        assert job.content_hash() == direct.content_hash()

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},  # no kernel
        {"kernel": "jacobi_2d", "mystery": 1},
        {"kernel": "no_such_kernel"},
        {"kernel": "jacobi_2d", "variant": "no_such_variant"},
        {"kernel": "jacobi_2d", "tile_shape": "12x12"},
        {"kernel": "jacobi_2d", "tile_shape": [12.5, 12]},
        {"kernel": "jacobi_2d", "codegen_kwargs": ["use_frep"]},
        {"kernel": "jacobi_2d", "machine": "no-such-machine"},
        {"kernel": "jacobi_2d", "machine": 42},
    ])
    def test_invalid_jobs_raise_spec_error(self, payload):
        with pytest.raises(SpecError):
            job_from_wire(payload)

    def test_unknown_kernel_message_names_the_registry(self):
        with pytest.raises(SpecError, match="jacobi_2d"):
            job_from_wire({"kernel": "no_such_kernel"})


class TestMachineFromWire:
    def test_none_and_preset(self):
        assert machine_from_wire(None) is None
        assert machine_from_wire("snitch-4").num_cores == 4

    def test_unknown_preset_lists_registered(self):
        with pytest.raises(SpecError, match="snitch-8"):
            machine_from_wire("no-such-machine")

    def test_inline_spec_builds_custom_machine(self):
        machine = machine_from_wire({"name": "tiny", "num_cores": 4,
                                     "tcdm_banks": 16})
        assert machine.name == "tiny" and machine.num_cores == 4
        assert machine.tcdm_banks == 16

    @pytest.mark.parametrize("payload", [
        {"num_cores": 4},  # missing name
        {"name": "x", "num_cores": "many"},
        {"name": "x", "timing_overrides": [1, 2]},
        {"name": "x", "bogus_param": 1},
    ])
    def test_invalid_inline_specs_raise(self, payload):
        with pytest.raises(SpecError):
            machine_from_wire(payload)


class TestExperimentFromWire:
    def test_cross_product_expansion(self):
        jobs = experiment_from_wire({
            "kernels": ["jacobi_2d", "j2d5pt"],
            "variants": ["base", "saris"],
            "seeds": [0, 1],
            "tiles": [[12, 12]],
        })
        assert len(jobs) == 2 * 2 * 2
        assert len({job.content_hash() for job in jobs}) == len(jobs)

    @pytest.mark.parametrize("payload", [
        "nope",
        {},  # no kernels
        {"kernels": []},
        {"kernels": ["jacobi_2d"], "surprise": 1},
        {"kernels": ["no_such_kernel"]},
        {"kernels": ["jacobi_2d"], "codegen": "fast"},
    ])
    def test_invalid_experiments_raise(self, payload):
        with pytest.raises(SpecError):
            experiment_from_wire(payload)


class TestJobsFromPayload:
    def test_requires_exactly_one_of_jobs_or_experiment(self):
        for payload in ({}, {"jobs": [], "experiment": {}}, [], "x"):
            with pytest.raises(SpecError):
                jobs_from_payload(payload)
        with pytest.raises(SpecError):
            jobs_from_payload({"jobs": []})  # non-empty required

    def test_jobs_list_parses(self):
        jobs = jobs_from_payload({"jobs": [{"kernel": "jacobi_2d"},
                                           {"kernel": "j2d5pt"}]})
        assert [job.kernel for job in jobs] == ["jacobi_2d", "j2d5pt"]


class TestExperimentToWire:
    def test_roundtrip_matches_direct_jobs(self):
        wire = experiment_to_wire(kernels=["jacobi_2d"],
                                  variants=["base", "saris"],
                                  machines=["snitch-4"],
                                  tiles=[small_tile("jacobi_2d")],
                                  seeds=[0, 1])
        jobs = jobs_from_payload(wire)
        assert len(jobs) == 4
        assert all(job.machine.name == "snitch-4" for job in jobs)

    def test_custom_machine_inlines_parameters(self):
        custom = MachineSpec.create("my-rig", num_cores=4, tcdm_banks=16)
        wire = experiment_to_wire(kernels=["jacobi_2d"],
                                  variants=["saris"], machines=[custom])
        (machine,) = wire["experiment"]["machines"]
        assert isinstance(machine, dict) and machine["name"] == "my-rig"
        # The custom topology survives the HTTP hop bit-exactly.
        (job,) = jobs_from_payload(wire)
        direct = SweepJob.make("jacobi_2d", machine=custom)
        assert job.content_hash() == direct.content_hash()

    def test_registered_machines_travel_by_name(self):
        wire = experiment_to_wire(kernels=["jacobi_2d"],
                                  machines=[resolve_machine("snitch-8-wide")])
        assert wire["experiment"]["machines"] == ["snitch-8-wide"]


class TestJobToWire:
    """job_to_wire is the fabric grant encoder: a leased job must decode
    on the worker to the exact content hash the coordinator granted."""

    def test_plain_job_roundtrips_hash(self):
        from repro.service import job_to_wire

        job = SweepJob.make("jacobi_2d", "base",
                            tile_shape=small_tile("jacobi_2d"), seed=5)
        assert job_from_wire(job_to_wire(job)).content_hash() == \
            job.content_hash()

    def test_machine_and_codegen_kwargs_roundtrip(self):
        from repro.service import job_to_wire

        preset = SweepJob.make("j2d5pt", machine=resolve_machine("snitch-4"),
                               codegen_kwargs={"use_frep": True})
        wire = job_to_wire(preset)
        assert wire["machine"] == "snitch-4"  # presets travel by name
        assert job_from_wire(wire).content_hash() == preset.content_hash()
        custom = SweepJob.make(
            "j2d5pt", machine=MachineSpec.create("rig", num_cores=4))
        wire = job_to_wire(custom)
        assert isinstance(wire["machine"], dict)
        assert job_from_wire(wire).content_hash() == custom.content_hash()

    def test_timing_params_roundtrip(self):
        from repro.snitch.params import TimingParams
        from repro.service import job_to_wire

        job = SweepJob.make("jacobi_2d", params=TimingParams())
        wire = job_to_wire(job)
        assert isinstance(wire["params"], list)
        decoded = job_from_wire(wire)
        assert decoded.params == job.params
        assert decoded.content_hash() == job.content_hash()

    def test_params_wire_length_mismatch_rejected(self):
        from repro.snitch.params import TimingParams
        from repro.service import job_to_wire

        wire = job_to_wire(SweepJob.make("jacobi_2d",
                                         params=TimingParams()))
        wire["params"] = wire["params"][:-1]
        with pytest.raises(SpecError):
            job_from_wire(wire)
