"""Native-engine defense-in-depth: handshake, watchdog, fault degradation.

Covers the guard layer added around the C engine: the ABI handshake on
every entry, the cycle-budget watchdog, the structured
:class:`~repro.snitch.native.NativeEngineError` surface, and the
supervised-sweep policy that routes those faults to one in-band
forced-Python retry — no pool respawn, no batch bisection.
"""

import pytest

from repro.isa.assembler import assemble
from repro.runner import run_kernel
from repro.snitch import native
from repro.snitch.cluster import SnitchCluster
from repro.snitch.params import TimingParams
from repro.sweep import ResultStore, SweepJob, run_sweep
from repro.sweep.faults import FaultSpec, injected
from repro.sweep.supervisor import RetryPolicy
from tests.conftest import small_tile

pytestmark = pytest.mark.skipif(
    not native.available(),
    reason=f"native engine unavailable: {native.disabled_reason()}")


_SPIN = """
    li x5, 1000000
loop:
    addi x5, x5, -1
    bne x5, x0, loop
"""


def _spin_cluster(num_cores=2):
    cluster = SnitchCluster(TimingParams(num_cores=num_cores))
    cluster.load_programs([assemble(_SPIN, name=f"spin{i}")
                           for i in range(num_cores)])
    return cluster


class TestHandshake:
    def test_abi_mismatch_refused(self, monkeypatch):
        # An out-of-date caller stamping the wrong ABI version must be
        # refused before the engine touches any struct field.
        monkeypatch.setattr(native, "_ABI_VERSION", 999)
        with pytest.raises(native.NativeEngineError) as exc_info:
            native.execute(_spin_cluster(), max_cycles=10_000)
        assert exc_info.value.name == "handshake"
        assert exc_info.value.code == 5

    def test_magic_mismatch_refused(self, monkeypatch):
        monkeypatch.setattr(native, "_MAGIC", 0xDEADBEEF)
        with pytest.raises(native.NativeEngineError) as exc_info:
            native.execute(_spin_cluster(), max_cycles=10_000)
        assert exc_info.value.name == "handshake"

    def test_healthy_handshake_runs(self):
        cluster = _spin_cluster()
        final = native.execute(cluster, max_cycles=10_000_000)
        assert final is not None
        assert all(core.finished for core in cluster.cores)


class TestWatchdog:
    def test_explicit_watchdog_fires_with_attribution(self):
        with pytest.raises(native.NativeEngineError) as exc_info:
            native.execute(_spin_cluster(), max_cycles=10_000_000,
                           watchdog=500)
        err = exc_info.value
        assert err.name == "watchdog"
        assert err.code == 8
        assert err.hart >= 0  # which core the engine was stepping
        assert "watchdog" in str(err)

    def test_env_watchdog_fires_through_cluster_run(self, monkeypatch):
        monkeypatch.setenv(native.WATCHDOG_ENV_VAR, "500")
        cluster = _spin_cluster()
        with pytest.raises(native.NativeEngineError) as exc_info:
            cluster.run(max_cycles=10_000_000)
        assert exc_info.value.name == "watchdog"

    def test_generous_watchdog_never_fires(self):
        cluster = _spin_cluster()
        final = native.execute(cluster, max_cycles=10_000_000,
                               watchdog=50_000_000)
        assert final is not None
        assert all(core.finished for core in cluster.cores)

    def test_malformed_env_value_means_off(self, monkeypatch):
        monkeypatch.setenv(native.WATCHDOG_ENV_VAR, "soon")
        cluster = _spin_cluster()
        assert native.execute(cluster, max_cycles=10_000_000) is not None


class TestErrorSurface:
    def test_attributes_and_message(self):
        err = native.NativeEngineError(7, "bounds", hart=3, pc=41,
                                       addr=0x1000_0000)
        assert (err.code, err.name, err.hart, err.pc) == (7, "bounds", 3, 41)
        message = str(err)
        assert "bounds" in message and "core 3" in message
        assert "0x10000000" in message

    def test_unattributable_fault_omits_location(self):
        err = native.NativeEngineError(5, "handshake")
        assert "core" not in str(err)
        assert err.hart == -1

    def test_taxonomy_is_complete(self):
        assert set(native.ERROR_NAMES.values()) == {
            "max_cycles", "mem_range", "ssr_misuse", "internal",
            "handshake", "decode", "bounds", "watchdog"}


def small_job(kernel="jacobi_2d", variant="saris", **kwargs):
    return SweepJob.make(kernel, variant, tile_shape=small_tile(kernel),
                         **kwargs)


class TestSupervisedDegradation:
    """NativeEngineError → JobFailure(kind="native_fault") → forced-Python
    retry, with zero pool respawns and zero bisections."""

    def test_injected_oob_fault_degrades_serially(self):
        jobs = [small_job("jacobi_2d"), small_job("j2d5pt")]
        with injected(FaultSpec(mode="native", kernel="j2d5pt",
                                engine="native")):
            report = run_sweep(jobs, workers=1, on_error="collect",
                               retry=RetryPolicy(backoff_seconds=0.0))
        assert not report.failures
        assert report.degraded == ["j2d5pt/saris"]
        assert report.native_faults >= 1
        assert report.pool_restarts == 0
        assert report.bisections == 0
        assert report.results[1].engine == "python"
        assert report.results[0].engine == "native"

    def test_injected_oob_fault_degrades_in_parallel_pool(self):
        jobs = [small_job(k) for k in ("jacobi_2d", "j2d5pt", "box2d1r",
                                       "j2d9pt")]
        with injected(FaultSpec(mode="native", kernel="box2d1r",
                                engine="native")):
            report = run_sweep(jobs, workers=2, on_error="collect",
                               retry=RetryPolicy(backoff_seconds=0.0))
        assert not report.failures
        assert report.degraded == ["box2d1r/saris"]
        assert report.native_faults >= 1
        assert report.pool_restarts == 0  # in-band, not a worker death
        assert report.bisections == 0

    def test_real_watchdog_fault_degrades(self, monkeypatch):
        # An actual runaway (modelled by a watchdog ceiling below the job's
        # runtime) must surface through the same native_fault path: the
        # Python engine has no watchdog, so the degraded retry completes.
        monkeypatch.setenv(native.WATCHDOG_ENV_VAR, "200")
        report = run_sweep([small_job("jacobi_2d")], workers=1,
                           on_error="collect",
                           retry=RetryPolicy(backoff_seconds=0.0))
        assert not report.failures
        assert report.degraded == ["jacobi_2d/saris"]
        assert report.native_faults == 1
        assert report.pool_restarts == 0
        assert report.results[0].engine == "python"

    def test_fault_terminal_when_degradation_disabled(self):
        with injected(FaultSpec(mode="native", kernel="jacobi_2d",
                                engine="native")):
            report = run_sweep(
                [small_job("jacobi_2d")], workers=1, on_error="collect",
                retry=RetryPolicy(backoff_seconds=0.0,
                                  degrade_to_python=False))
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.kind == "native_fault"
        assert "native engine fault" in failure.message
        assert report.degraded == []

    def test_stats_carry_native_fault_counter(self):
        with injected(FaultSpec(mode="native", kernel="jacobi_2d",
                                engine="native")):
            report = run_sweep([small_job("jacobi_2d")], workers=1,
                               on_error="collect",
                               retry=RetryPolicy(backoff_seconds=0.0))
        stats = report.stats()
        assert stats["native_faults"] == 1
        assert stats["pool_restarts"] == 0


class TestDegradedIdentity:
    """Satellite: a degraded (forced-Python) run is metrically identical to
    the native run — ``engine`` is provenance, not identity."""

    def test_metrics_hash_ignores_engine_field(self):
        tile = small_tile("jacobi_2d")
        native_result = run_kernel("jacobi_2d", "saris", tile_shape=tile)
        with native.forced_python():
            python_result = run_kernel("jacobi_2d", "saris", tile_shape=tile)
        assert native_result.engine == "native"
        assert python_result.engine == "python"
        assert native_result.metrics_hash() == python_result.metrics_hash()

    def test_metrics_hash_sensitive_to_metrics(self):
        tile = small_tile("jacobi_2d")
        a = run_kernel("jacobi_2d", "saris", tile_shape=tile)
        b = run_kernel("jacobi_2d", "base", tile_shape=tile)
        assert a.metrics_hash() != b.metrics_hash()

    def test_hash_survives_store_roundtrip(self, tmp_path):
        job = small_job("jacobi_2d")
        store = ResultStore(tmp_path)
        report = run_sweep([job], workers=1, store=store)
        fresh = report.results[0]
        loaded = store.load(job)
        assert loaded is not None
        assert loaded.metrics_hash() == fresh.metrics_hash()

    def test_degraded_sweep_result_hashes_like_clean_run(self):
        job = small_job("jacobi_2d")
        clean = run_sweep([job], workers=1).results[0]
        with injected(FaultSpec(mode="native", kernel="jacobi_2d",
                                engine="native")):
            degraded = run_sweep([job], workers=1, on_error="collect",
                                 retry=RetryPolicy(backoff_seconds=0.0))
        assert degraded.degraded == ["jacobi_2d/saris"]
        assert (degraded.results[0].metrics_hash()
                == clean.metrics_hash())
