"""Unit tests of the shared-HBM processor-sharing model."""

import math

import pytest

from repro.snitch.dma import DmaEngine, DmaTransfer
from repro.snitch.hbm import HbmError, HbmRequest, SharedHbm
from repro.snitch.params import TimingParams


def _drain(hbm):
    """Run the model until idle; return completions in order."""
    completed = []
    while hbm.in_flight:
        completed.extend(hbm.advance(hbm.next_completion()))
    return completed


class TestSingleRequest:
    def test_unconstrained_device_matches_cluster_dma_timing(self):
        """With an infinite device, service time is the DmaEngine's own."""
        params = TimingParams()
        engine = DmaEngine([], params)
        transfer = DmaTransfer(src=0, dst=0, inner_bytes=512, outer_reps=62)
        efficiency = engine.transfer_utilization(transfer)
        hbm = SharedHbm(num_groups=1, device_bytes_per_cycle=math.inf,
                        port_bytes_per_cycle=params.dma_bus_bytes)
        request = HbmRequest(cluster=0, group=0,
                             payload_bytes=transfer.total_bytes,
                             efficiency=efficiency)
        hbm.submit(request, 0.0)
        (done,) = _drain(hbm)
        assert done is request
        assert done.service_cycles == pytest.approx(
            engine.transfer_cycles(transfer))

    def test_device_slower_than_port_limits_rate(self):
        hbm = SharedHbm(num_groups=1, device_bytes_per_cycle=16.0,
                        port_bytes_per_cycle=64.0)
        request = HbmRequest(cluster=0, group=0, payload_bytes=1600,
                             efficiency=1.0)
        hbm.submit(request, 0.0)
        _drain(hbm)
        assert request.service_cycles == pytest.approx(100.0)

    def test_rejects_bad_requests(self):
        with pytest.raises(HbmError):
            HbmRequest(cluster=0, group=0, payload_bytes=0, efficiency=1.0)
        with pytest.raises(HbmError):
            HbmRequest(cluster=0, group=0, payload_bytes=8, efficiency=1.5)
        with pytest.raises(HbmError):
            SharedHbm(num_groups=0, device_bytes_per_cycle=1.0,
                      port_bytes_per_cycle=1.0)
        with pytest.raises(HbmError):
            SharedHbm(num_groups=1, device_bytes_per_cycle=1.0,
                      port_bytes_per_cycle=math.inf)


class TestSharing:
    def test_two_equal_requests_halve_the_rate(self):
        hbm = SharedHbm(num_groups=1, device_bytes_per_cycle=10.0,
                        port_bytes_per_cycle=100.0)
        a = HbmRequest(cluster=0, group=0, payload_bytes=1000, efficiency=1.0)
        b = HbmRequest(cluster=1, group=0, payload_bytes=1000, efficiency=1.0)
        hbm.submit(a, 0.0)
        hbm.submit(b, 0.0)
        _drain(hbm)
        # Both share 10 B/cycle -> 5 each -> 200 cycles.
        assert a.finish_cycle == pytest.approx(200.0)
        assert b.finish_cycle == pytest.approx(200.0)

    def test_staggered_arrival_processor_sharing(self):
        hbm = SharedHbm(num_groups=1, device_bytes_per_cycle=10.0,
                        port_bytes_per_cycle=100.0)
        a = HbmRequest(cluster=0, group=0, payload_bytes=1000, efficiency=1.0)
        b = HbmRequest(cluster=1, group=0, payload_bytes=1000, efficiency=1.0)
        hbm.submit(a, 0.0)
        # a alone for 50 cycles (500 bytes), then fair-shares with b.
        hbm.submit(b, 50.0)
        _drain(hbm)
        # a: 500 remaining at 5 B/cycle -> finishes at 150.
        assert a.finish_cycle == pytest.approx(150.0)
        # b: 500 done by 150, then alone at 10 B/cycle -> 200.
        assert b.finish_cycle == pytest.approx(200.0)

    def test_groups_do_not_contend(self):
        hbm = SharedHbm(num_groups=2, device_bytes_per_cycle=10.0,
                        port_bytes_per_cycle=100.0)
        a = HbmRequest(cluster=0, group=0, payload_bytes=1000, efficiency=1.0)
        b = HbmRequest(cluster=1, group=1, payload_bytes=1000, efficiency=1.0)
        hbm.submit(a, 0.0)
        hbm.submit(b, 0.0)
        _drain(hbm)
        assert a.finish_cycle == pytest.approx(100.0)
        assert b.finish_cycle == pytest.approx(100.0)

    def test_efficiency_scales_rate_but_not_fair_share(self):
        hbm = SharedHbm(num_groups=1, device_bytes_per_cycle=10.0,
                        port_bytes_per_cycle=100.0)
        a = HbmRequest(cluster=0, group=0, payload_bytes=1000, efficiency=0.5)
        hbm.submit(a, 0.0)
        _drain(hbm)
        assert a.service_cycles == pytest.approx(200.0)

    def test_stats_and_determinism(self):
        def run():
            hbm = SharedHbm(num_groups=1, device_bytes_per_cycle=8.0,
                            port_bytes_per_cycle=64.0)
            for index in range(3):
                hbm.submit(HbmRequest(cluster=index, group=0,
                                      payload_bytes=512 + 128 * index,
                                      efficiency=0.9), float(10 * index))
            _drain(hbm)
            return hbm.stats()

        first, second = run(), run()
        assert first == second
        assert first["requests_completed"] == 3
        assert first["bytes_moved"] == 512 + 640 + 768
        assert 0.0 < first["utilization"] <= 1.0

    def test_submission_in_the_past_rejected(self):
        hbm = SharedHbm(num_groups=1, device_bytes_per_cycle=10.0,
                        port_bytes_per_cycle=100.0)
        hbm.advance(100.0)
        with pytest.raises(HbmError):
            hbm.submit(HbmRequest(cluster=0, group=0, payload_bytes=8,
                                  efficiency=1.0), 50.0)
