"""Tests for the SSR data movers (affine and indirect streams)."""

import numpy as np
import pytest

from repro.snitch.params import TimingParams
from repro.snitch.ssr import DataMover, SsrConfigError, SsrUnit
from repro.snitch.tcdm import TCDM


@pytest.fixture
def tcdm():
    return TCDM()


def drain_read(mover, tcdm, count, max_cycles=10_000):
    """Run the mover until `count` elements have been popped; return them."""
    values = []
    cycles = 0
    while len(values) < count:
        tcdm.begin_cycle()
        mover.tick()
        while mover.can_pop() and len(values) < count:
            values.append(mover.pop())
        cycles += 1
        assert cycles < max_cycles, "stream did not produce enough elements"
    return values


class TestAffineReadStream:
    def test_1d_sequence(self, tcdm):
        data = np.arange(8, dtype=np.float64)
        tcdm.write_f64_array(tcdm.base, data)
        mover = DataMover(2, tcdm, indirect_capable=False)
        mover.cfg_dims(1)
        mover.cfg_bound(0, 8)
        mover.cfg_stride(0, 8)
        mover.cfg_base(tcdm.base)
        assert mover.start_affine()
        assert drain_read(mover, tcdm, 8) == list(data)

    def test_2d_strided_sequence(self, tcdm):
        # 4x4 grid; read column 0 of every row (stride 32), twice nested.
        grid = np.arange(16, dtype=np.float64)
        tcdm.write_f64_array(tcdm.base, grid)
        mover = DataMover(2, tcdm, indirect_capable=False)
        mover.cfg_dims(2)
        mover.cfg_bound(0, 2)
        mover.cfg_stride(0, 8)      # two consecutive elements
        mover.cfg_bound(1, 4)
        mover.cfg_stride(1, 32)     # next row
        mover.cfg_base(tcdm.base)
        mover.start_affine()
        values = drain_read(mover, tcdm, 8)
        expected = [0.0, 1.0, 4.0, 5.0, 8.0, 9.0, 12.0, 13.0]
        assert values == expected

    def test_repeating_pattern_with_zero_stride(self, tcdm):
        table = np.array([1.5, 2.5, 3.5])
        tcdm.write_f64_array(tcdm.base, table)
        mover = DataMover(2, tcdm, indirect_capable=False)
        mover.cfg_dims(2)
        mover.cfg_bound(0, 3)
        mover.cfg_stride(0, 8)
        mover.cfg_bound(1, 2)
        mover.cfg_stride(1, 0)      # repeat the table per outer iteration
        mover.cfg_base(tcdm.base)
        mover.start_affine()
        assert drain_read(mover, tcdm, 6) == [1.5, 2.5, 3.5, 1.5, 2.5, 3.5]

    def test_fifo_depth_limits_prefetch(self, tcdm):
        params = TimingParams(ssr_fifo_depth=2)
        tcdm.write_f64_array(tcdm.base, np.arange(16, dtype=np.float64))
        mover = DataMover(2, tcdm, params, indirect_capable=False)
        mover.cfg_dims(1)
        mover.cfg_bound(0, 16)
        mover.cfg_stride(0, 8)
        mover.cfg_base(tcdm.base)
        mover.start_affine()
        for _ in range(10):
            tcdm.begin_cycle()
            mover.tick()
        assert mover.available() == 2

    def test_busy_until_consumed(self, tcdm):
        tcdm.write_f64_array(tcdm.base, np.arange(4, dtype=np.float64))
        mover = DataMover(2, tcdm, indirect_capable=False)
        mover.cfg_dims(1)
        mover.cfg_bound(0, 4)
        mover.cfg_stride(0, 8)
        mover.cfg_base(tcdm.base)
        mover.start_affine()
        assert mover.busy()
        assert not mover.start_affine()  # cannot restart while busy
        drain_read(mover, tcdm, 4)
        assert not mover.busy()
        assert mover.start_affine()


class TestAffineWriteStream:
    def test_write_sequence_lands_in_memory(self, tcdm):
        mover = DataMover(2, tcdm, indirect_capable=False)
        mover.cfg_write(True)
        mover.cfg_dims(1)
        mover.cfg_bound(0, 4)
        mover.cfg_stride(0, 8)
        mover.cfg_base(tcdm.base + 64)
        mover.start_affine()
        values = [1.0, 2.0, 3.0, 4.0]
        written = 0
        cycle = 0
        while not mover.drained() or written < 4:
            tcdm.begin_cycle()
            if written < 4 and mover.can_push():
                mover.push(values[written])
                written += 1
            mover.tick()
            cycle += 1
            assert cycle < 1000
        assert list(tcdm.read_f64_array(tcdm.base + 64, 4)) == values

    def test_push_to_read_stream_rejected(self, tcdm):
        mover = DataMover(2, tcdm, indirect_capable=False)
        with pytest.raises(SsrConfigError):
            mover.push(1.0)

    def test_push_overflow_rejected(self, tcdm):
        params = TimingParams(ssr_fifo_depth=1)
        mover = DataMover(2, tcdm, params, indirect_capable=False)
        mover.cfg_write(True)
        mover.cfg_dims(1)
        mover.cfg_bound(0, 4)
        mover.cfg_stride(0, 8)
        mover.cfg_base(tcdm.base)
        mover.start_affine()
        mover.push(1.0)
        assert not mover.can_push()
        with pytest.raises(SsrConfigError):
            mover.push(2.0)


class TestIndirectStream:
    def _setup_indirect(self, tcdm, indices, data, idx_size=2):
        data_addr = tcdm.base
        tcdm.write_f64_array(data_addr, data)
        idx_addr = tcdm.base + 4096
        if idx_size == 2:
            tcdm.write_i16_array(idx_addr, indices)
        else:
            tcdm.write_i32_array(idx_addr, indices)
        mover = DataMover(0, tcdm, indirect_capable=True)
        mover.cfg_idx_size(idx_size)
        mover.cfg_indirect(idx_addr, len(indices))
        return mover, data_addr

    def test_gather_with_positive_and_negative_indices(self, tcdm):
        data = np.arange(32, dtype=np.float64)
        indices = [0, 3, -2, 5]
        mover, data_addr = self._setup_indirect(tcdm, indices, data)
        base = data_addr + 8 * 8  # element 8 as the indirection base
        assert mover.launch(base)
        values = drain_read(mover, tcdm, 4)
        assert values == [8.0, 11.0, 6.0, 13.0]

    def test_same_indices_with_new_base(self, tcdm):
        data = np.arange(32, dtype=np.float64)
        indices = [0, 1, 2]
        mover, data_addr = self._setup_indirect(tcdm, indices, data)
        mover.launch(data_addr)
        assert drain_read(mover, tcdm, 3) == [0.0, 1.0, 2.0]
        mover.launch(data_addr + 10 * 8)
        assert drain_read(mover, tcdm, 3) == [10.0, 11.0, 12.0]

    def test_32bit_indices(self, tcdm):
        data = np.arange(64, dtype=np.float64)
        indices = [0, 40000 % 64, 2]  # value fits i32, exercise 4-byte path
        mover, data_addr = self._setup_indirect(tcdm, [0, 33, 2], data, idx_size=4)
        mover.launch(data_addr)
        assert drain_read(mover, tcdm, 3) == [0.0, 33.0, 2.0]

    def test_launch_blocked_while_busy(self, tcdm):
        data = np.arange(16, dtype=np.float64)
        mover, data_addr = self._setup_indirect(tcdm, [0, 1, 2, 3], data)
        assert mover.launch(data_addr)
        assert not mover.launch(data_addr)  # previous stream not yet consumed
        drain_read(mover, tcdm, 4)
        assert mover.launch(data_addr)

    def test_launch_without_indirect_cfg_rejected(self, tcdm):
        mover = DataMover(0, tcdm, indirect_capable=True)
        with pytest.raises(SsrConfigError):
            mover.launch(tcdm.base)

    def test_indirect_on_affine_only_mover_rejected(self, tcdm):
        mover = DataMover(2, tcdm, indirect_capable=False)
        with pytest.raises(SsrConfigError):
            mover.cfg_indirect(tcdm.base, 4)

    def test_index_fetch_counts_as_tcdm_traffic(self, tcdm):
        data = np.arange(16, dtype=np.float64)
        mover, data_addr = self._setup_indirect(tcdm, [0, 1, 2, 3, 4], data)
        mover.launch(data_addr)
        drain_read(mover, tcdm, 5)
        assert mover.index_requests >= 2  # five 16-bit indices span two words
        assert mover.data_requests >= 5


class TestSsrUnit:
    def test_stream_reg_mapping_follows_enable(self, tcdm):
        unit = SsrUnit(tcdm)
        assert not unit.is_stream_reg(0)
        unit.enabled = True
        assert unit.is_stream_reg(0) and unit.is_stream_reg(2)
        assert not unit.is_stream_reg(3)

    def test_mover_index_validation(self, tcdm):
        unit = SsrUnit(tcdm)
        with pytest.raises(SsrConfigError):
            unit.mover(3)

    def test_dm2_is_not_indirect_capable(self, tcdm):
        unit = SsrUnit(tcdm)
        assert unit.mover(0).indirect_capable
        assert unit.mover(1).indirect_capable
        assert not unit.mover(2).indirect_capable

    def test_write_drain_tracking(self, tcdm):
        unit = SsrUnit(tcdm)
        assert unit.all_writes_drained()
        mover = unit.mover(2)
        mover.cfg_write(True)
        mover.cfg_dims(1)
        mover.cfg_bound(0, 1)
        mover.cfg_stride(0, 8)
        mover.cfg_base(tcdm.base)
        mover.start_affine()
        mover.push(9.0)
        assert not unit.all_writes_drained()
        tcdm.begin_cycle()
        unit.tick()
        assert unit.all_writes_drained()
        assert tcdm.read_f64(tcdm.base) == 9.0
