"""Tests for the Snitch core: integer pipeline, FPU sequencer, FREP, cluster."""

import numpy as np
import pytest

from repro.isa.assembler import assemble
from repro.snitch.cluster import ClusterError, SnitchCluster
from repro.snitch.dma import DmaEngine, DmaTransfer
from repro.snitch.fpu import FpuError, FrepBlock
from repro.snitch.icache import InstructionCache
from repro.snitch.params import TimingParams


def run_single(source: str, setup=None, max_cycles=100_000, params=None):
    """Assemble and run a single-core program; return (cluster, core, result)."""
    cluster = SnitchCluster(params or TimingParams())
    program = assemble(source, name="test")
    cluster.load_programs([program])
    core = cluster.cores[0]
    if setup:
        setup(cluster, core)
    result = cluster.run(max_cycles=max_cycles)
    return cluster, core, result


class TestIntegerExecution:
    def test_arithmetic_and_logic(self):
        source = """
            li   t0, 21
            li   t1, 2
            mul  t2, t0, t1
            addi t3, t2, -2
            sub  t4, t3, t1
            xor  t5, t4, t4
            slli t6, t1, 4
            sw   t2, 0(a1)
            sw   t4, 4(a1)
            sw   t6, 8(a1)
        """
        def setup(cluster, core):
            core.set_reg("a1", cluster.tcdm.base)
        cluster, core, _ = run_single(source, setup)
        assert cluster.tcdm.read_i32(cluster.tcdm.base) == 42
        assert cluster.tcdm.read_i32(cluster.tcdm.base + 4) == 38
        assert cluster.tcdm.read_i32(cluster.tcdm.base + 8) == 32

    def test_branch_loop_and_counters(self):
        source = """
            li   t0, 0
            li   t1, 10
        loop:
            addi t0, t0, 1
            bne  t0, t1, loop
        """
        _, core, result = run_single(source)
        assert core.int_regs.read(5) == 10
        # 2 setup + 10 iterations x 2 instructions.
        assert core.int_retired == 22
        assert result.cycles >= 22  # taken-branch penalties add cycles

    def test_division_and_remainder(self):
        source = """
            li t0, 17
            li t1, 5
            div t2, t0, t1
            rem t3, t0, t1
            li t4, 0
            div t5, t0, t4
        """
        _, core, _ = run_single(source)
        assert core.int_regs.read(7) == 3
        assert core.int_regs.read(28) == 2
        assert core.int_regs.read(30) == -1  # RISC-V division by zero

    def test_loads_and_stores_all_widths(self):
        source = """
            li  t1, -5
            sw  t1, 0(a1)
            lw  t2, 0(a1)
            sh  t1, 8(a1)
            lhu t3, 8(a1)
            sb  t1, 16(a1)
            lb  t4, 16(a1)
        """
        def setup(cluster, core):
            core.set_reg("a1", cluster.tcdm.base)
        _, core, _ = run_single(source, setup)
        assert core.int_regs.read(7) == -5
        assert core.int_regs.read(28) == 0xFFFB
        assert core.int_regs.read(29) == -5

    def test_csr_reads(self):
        source = "csrr a0, mhartid\ncsrr a2, minstret\n"
        _, core, _ = run_single(source)
        assert core.int_regs.read(10) == 0
        assert core.int_regs.read(12) >= 1

    def test_slt_and_comparisons(self):
        source = """
            li t0, -1
            li t1, 1
            slt t2, t0, t1
            sltu t3, t0, t1
        """
        _, core, _ = run_single(source)
        assert core.int_regs.read(7) == 1
        assert core.int_regs.read(28) == 0  # -1 is large unsigned


class TestFpExecution:
    def test_fp_arithmetic_results(self):
        source = """
            fld ft3, 0(a1)
            fld ft4, 8(a1)
            fadd.d ft5, ft3, ft4
            fmul.d ft6, ft3, ft4
            fmadd.d ft7, ft3, ft4, ft5
            fsub.d fs0, ft3, ft4
            fsd ft5, 16(a1)
            fsd ft6, 24(a1)
            fsd ft7, 32(a1)
            fsd fs0, 40(a1)
        """
        def setup(cluster, core):
            core.set_reg("a1", cluster.tcdm.base)
            cluster.tcdm.write_f64(cluster.tcdm.base, 3.0)
            cluster.tcdm.write_f64(cluster.tcdm.base + 8, 0.5)
        cluster, _, _ = run_single(source, setup)
        base = cluster.tcdm.base
        assert cluster.tcdm.read_f64(base + 16) == 3.5
        assert cluster.tcdm.read_f64(base + 24) == 1.5
        assert cluster.tcdm.read_f64(base + 32) == 5.0
        assert cluster.tcdm.read_f64(base + 40) == 2.5

    def test_fp_instruction_counts_and_flops(self):
        source = """
            fadd.d ft3, ft4, ft5
            fmadd.d ft6, ft3, ft3, ft3
            fsd ft6, 0(a1)
        """
        def setup(cluster, core):
            core.set_reg("a1", cluster.tcdm.base)
        _, core, result = run_single(source, setup)
        assert core.fpu.stats.issued_compute == 2
        assert core.fpu.stats.flops == 3
        assert result.total_flops == 3

    def test_raw_dependency_adds_latency(self):
        chain = "\n".join(["fadd.d ft3, ft3, ft4"] * 8)
        independent = "\n".join(
            f"fadd.d ft{3 + (i % 4)}, ft8, ft9" for i in range(8))
        _, _, chained = run_single(chain)
        _, _, parallel = run_single(independent)
        assert chained.cycles > parallel.cycles

    def test_address_captured_at_dispatch(self):
        # The pointer is incremented after the fsd is dispatched; the store
        # must still go to the original address.
        source = """
            fld ft3, 0(a1)
            fsd ft3, 8(a1)
            addi a1, a1, 64
            fsd ft3, 0(a1)
        """
        def setup(cluster, core):
            core.set_reg("a1", cluster.tcdm.base)
            cluster.tcdm.write_f64(cluster.tcdm.base, 7.5)
        cluster, _, _ = run_single(source, setup)
        assert cluster.tcdm.read_f64(cluster.tcdm.base + 8) == 7.5
        assert cluster.tcdm.read_f64(cluster.tcdm.base + 64) == 7.5


class TestFrep:
    def test_frep_repeats_fp_block(self):
        source = """
            li t0, 4
            fld ft3, 0(a1)
            frep.o t0, 2
            fadd.d ft4, ft4, ft3
            fadd.d ft5, ft5, ft3
            fsd ft4, 8(a1)
            fsd ft5, 16(a1)
        """
        def setup(cluster, core):
            core.set_reg("a1", cluster.tcdm.base)
            cluster.tcdm.write_f64(cluster.tcdm.base, 1.0)
        cluster, core, _ = run_single(source, setup)
        assert cluster.tcdm.read_f64(cluster.tcdm.base + 8) == 4.0
        assert cluster.tcdm.read_f64(cluster.tcdm.base + 16) == 4.0
        assert core.fpu.stats.issued_compute == 8

    def test_frep_zero_reps_skips_block(self):
        source = """
            li t0, 0
            frep.o t0, 1
            fadd.d ft4, ft4, ft5
        """
        _, core, _ = run_single(source)
        assert core.fpu.stats.issued_compute == 0

    def test_frep_frees_integer_issue_slots(self):
        # With FREP the integer core finishes dispatching long before the FPU
        # drains, so total cycles track the FP work, not 2x the FP work.
        body = "fmul.d ft4, ft5, ft6\n" * 8
        with_frep = f"li t0, 8\nfrep.o t0, 8\n{body}"
        without = body * 8
        _, _, frep_result = run_single(with_frep)
        _, _, plain_result = run_single(without)
        assert frep_result.total_flops == plain_result.total_flops
        assert frep_result.cycles <= plain_result.cycles

    def test_memory_ops_rejected_inside_frep(self):
        with pytest.raises(FpuError):
            FrepBlock(instructions=[assemble("fld ft3, 0(t0)")[0]], reps=2)

    def test_frep_block_bad_reps(self):
        with pytest.raises(FpuError):
            FrepBlock(instructions=[assemble("fadd.d ft3, ft4, ft5")[0]], reps=0)


class TestIcacheAndCluster:
    def test_icache_hits_after_first_pass(self):
        cache = InstructionCache(TimingParams())
        assert not cache.lookup(0, 0)
        assert cache.lookup(0, 1)
        assert cache.lookup(0, 0)
        assert cache.miss_rate < 1.0

    def test_icache_capacity_eviction(self):
        params = TimingParams(icache_lines=2, icache_line_insts=1)
        cache = InstructionCache(params)
        cache.lookup(0, 0)
        cache.lookup(0, 1)
        cache.lookup(0, 2)
        assert not cache.lookup(0, 0)  # evicted

    def test_cluster_requires_programs(self):
        with pytest.raises(ClusterError):
            SnitchCluster().run()

    def test_cluster_detects_runaway_program(self):
        source = "loop:\n  j loop\n"
        cluster = SnitchCluster()
        cluster.load_programs([assemble(source)])
        with pytest.raises(ClusterError):
            cluster.run(max_cycles=200)

    def test_multicore_hartid_and_independent_state(self):
        source = """
            csrr a0, mhartid
            slli t0, a0, 3
            add  t1, a1, t0
            fcvt.d.w ft3, a0
            fsd ft3, 0(t1)
        """
        cluster = SnitchCluster()
        programs = [assemble(source, name=f"p{i}") for i in range(4)]
        cluster.load_programs(programs)
        for core in cluster.cores:
            core.set_reg("a1", cluster.tcdm.base)
        cluster.run()
        values = cluster.tcdm.read_f64_array(cluster.tcdm.base, 4)
        assert list(values) == [0.0, 1.0, 2.0, 3.0]

    def test_too_many_programs_rejected(self):
        cluster = SnitchCluster()
        programs = [assemble("nop") for _ in range(9)]
        with pytest.raises(ClusterError):
            cluster.load_programs(programs)


class TestDmaEngine:
    def test_1d_copy(self):
        cluster = SnitchCluster()
        src = cluster.alloc_main(256)
        dst = cluster.alloc_f64(32)
        data = np.arange(32, dtype=np.float64)
        cluster.main_memory.write_f64_array(src, data)
        cluster.dma.enqueue(DmaTransfer(src=src, dst=dst, inner_bytes=256))
        cluster.dma.run_to_completion()
        assert np.array_equal(cluster.tcdm.read_f64_array(dst, 32), data)

    def test_2d_strided_copy(self):
        cluster = SnitchCluster()
        src = cluster.alloc_main(8 * 64)
        dst = cluster.alloc(8 * 16)
        rows = np.arange(64, dtype=np.float64).reshape(8, 8)
        cluster.main_memory.write_f64_array(src, rows.ravel())
        # Copy the first two elements of every row.
        cluster.dma.enqueue(DmaTransfer(src=src, dst=dst, inner_bytes=16,
                                        outer_reps=8, src_stride=64, dst_stride=16))
        cluster.dma.run_to_completion()
        got = cluster.tcdm.read_f64_array(dst, 16).reshape(8, 2)
        assert np.array_equal(got, rows[:, :2])

    def test_utilization_increases_with_row_length(self):
        engine = DmaEngine([], TimingParams())
        short = DmaTransfer(src=0, dst=0, inner_bytes=128, outer_reps=16)
        long = DmaTransfer(src=0, dst=0, inner_bytes=512, outer_reps=4)
        assert engine.transfer_utilization(long) > engine.transfer_utilization(short)

    def test_cycle_accounting(self):
        engine = DmaEngine([], TimingParams())
        transfer = DmaTransfer(src=0, dst=0, inner_bytes=512, outer_reps=4)
        cycles = engine.transfer_cycles(transfer)
        assert cycles == 4 * (8 + 2) + 8

    def test_invalid_descriptor_rejected(self):
        with pytest.raises(ValueError):
            DmaTransfer(src=0, dst=0, inner_bytes=0)
        with pytest.raises(ValueError):
            DmaTransfer(src=0, dst=0, inner_bytes=8, outer_reps=0)
