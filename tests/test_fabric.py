"""Distributed sweep fabric: lease protocol, expiry, workers, end-to-end.

Protocol tests drive ``POST /v1/fabric/lease`` / ``heartbeat`` /
``complete`` by hand against a short-TTL coordinator so every lease-table
transition (grant, renewal, expiry, suspect quarantine, charged failure,
stale adoption) is pinned down deterministically.  Worker tests run the
real :class:`FabricWorker` pull loop in-process with an injected runner.
The end-to-end test launches two genuine ``repro worker`` subprocesses and
kills one mid-sweep via ``worker_kill`` fault injection, then checks the
merged result is bit-identical to a serial in-process run.
"""

import asyncio
import contextlib
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.runner import KernelRunResult
from repro.service import (
    FabricCoordinator,
    FabricError,
    FabricWorker,
    JobQueue,
    ReproService,
    ServiceClient,
    ServiceError,
    job_from_wire,
)
from repro.sweep import ResultStore, execute_job
from repro.sweep import faults
from tests.test_service_server import JOB_WIRE, execute_job_cached

REPO_ROOT = Path(__file__).resolve().parents[1]

JOB_WIRE_B = dict(JOB_WIRE, seed=7)


def ok_payload(job_hash, result=None):
    """A worker's success upload for ``job_hash`` (canned real result)."""
    result = result if result is not None else execute_job_cached(None)
    return {"ok": True, "hash": job_hash, "result": result.to_json_dict(),
            "attempts": 1, "degraded": False}


def wait_until(predicate, timeout=15.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out after {timeout}s waiting for {message}")


@contextlib.contextmanager
def running_fabric(store=None, ttl=5.0, max_attempts=None, token=None):
    """Boot a fabric-mode daemon (queue + coordinator + HTTP) in a
    background loop thread; yield ``(service, client)``."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    async def boot():
        queue = JobQueue(store=store, dispatch="fabric")
        fabric = FabricCoordinator(queue, ttl=ttl, max_attempts=max_attempts)
        service = ReproService(queue, port=0, token=token, fabric=fabric)
        return await service.start()

    service = asyncio.run_coroutine_threadsafe(boot(), loop).result(30)
    try:
        yield service, ServiceClient(service.url, token=token)
    finally:
        asyncio.run_coroutine_threadsafe(service.close(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


class TestFabricProtocol:
    def test_lease_heartbeat_complete_roundtrip(self):
        result = execute_job_cached(None)  # warm before leasing
        with running_fabric() as (service, client):
            assert client.stats()["queue"]["dispatch"] == "fabric"
            receipt = client.submit({"jobs": [JOB_WIRE]})
            # No local worker lanes: the job waits for a lease.
            time.sleep(0.2)
            assert client.sweep(receipt["sweep"])["counts"]["queued"] == 1
            grants = client.lease("w1", capacity=3)["grants"]
            assert len(grants) == 1  # only one job exists
            grant = grants[0]
            assert grant["suspect"] is False and grant["attempt"] == 1
            # The wire job decodes to the exact content hash that was
            # submitted: location-independent identity.
            job = job_from_wire(grant["job"])
            assert job.content_hash() == grant["hash"]
            assert grant["hash"] == receipt["jobs"][0]["hash"]
            beat = client.heartbeat(grant["lease"])
            assert beat["ok"] is True and beat["ttl"] == pytest.approx(5.0)
            done = client.complete(grant["lease"],
                                   ok_payload(grant["hash"], result))
            assert done["ok"] is True and done["stale"] is False
            final = client.sweep(receipt["sweep"])
            assert final["state"] == "done"
            assert final["counts"]["done"] == 1
            payload = client.job(grant["hash"])
            assert payload["state"] == "done"
            assert payload["metrics"]["correct"] is True
            stats = client.stats()["fabric"]
            assert stats["granted"] == 1 and stats["completed"] == 1
            assert stats["workers"]["total"] == 1
            assert stats["leases_in_flight"] == 0
            # The completed lease is gone: renewing it answers 410.
            with pytest.raises(ServiceError) as err:
                client.heartbeat(grant["lease"])
            assert err.value.status == 410

    def test_fabric_routes_404_without_fabric_mode(self):
        from tests.test_service_server import running_server

        with running_server() as (service, client):
            for call in (lambda: client.lease("w1"),
                         lambda: client.fabric(),
                         lambda: client.heartbeat("l0001-beef")):
                with pytest.raises(ServiceError) as err:
                    call()
                assert err.value.status == 404
                assert "--fabric" in str(err.value)

    def test_bad_lease_and_completion_payloads_are_400(self):
        with running_fabric() as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            with pytest.raises(ServiceError) as err:
                client._request("POST", "/v1/fabric/lease",
                                payload={"capacity": 1})
            assert err.value.status == 400
            grant = client.lease("w1")["grants"][0]
            with pytest.raises(ServiceError) as err:
                client.complete(grant["lease"],
                                {"ok": True, "hash": grant["hash"],
                                 "result": {"junk": 1}})
            assert err.value.status == 400
            assert receipt["jobs"][0]["hash"] == grant["hash"]

    def test_coordinator_requires_fabric_queue(self):
        with pytest.raises(FabricError):
            FabricCoordinator(JobQueue())  # dispatch="local"


class TestLeaseExpiry:
    def test_expiry_requeues_uncharged_suspect(self):
        result = execute_job_cached(None)
        with running_fabric(ttl=0.4) as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            grant = client.lease("doomed")["grants"][0]
            wait_until(lambda: client.fabric()["requeues"] == 1,
                       message="lease reaped and job requeued")
            stats = client.fabric()
            assert stats["expired_leases"] == 1
            assert stats["suspects_queued"] == 1
            # The dead worker's lease is gone.
            with pytest.raises(ServiceError) as err:
                client.heartbeat(grant["lease"])
            assert err.value.status == 410
            # Re-granted as a suspect but NOT charged: attempt stays 1.
            regrant = client.lease("rescuer")["grants"][0]
            assert regrant["suspect"] is True and regrant["attempt"] == 1
            assert regrant["hash"] == grant["hash"]
            client.complete(regrant["lease"],
                            ok_payload(regrant["hash"], result))
            final = client.sweep(receipt["sweep"])
            assert final["state"] == "done"
            events = list(client.events(receipt["sweep"]))
            kinds = [event["event"] for event in events]
            assert "requeued" in kinds
            requeued = events[kinds.index("requeued")]
            assert requeued["reason"] == "lease_expired"
            assert requeued["worker"] == "doomed"

    def test_node_death_expires_all_its_leases_together(self):
        result = execute_job_cached(None)
        with running_fabric(ttl=0.4) as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE, JOB_WIRE_B]})
            grants = client.lease("doomed", capacity=2)["grants"]
            assert len(grants) == 2
            wait_until(lambda: client.fabric()["requeues"] == 2,
                       message="both leases of the dead node reaped")
            # Innocent siblings: neither job is charged an attempt.
            g1 = client.lease("w1")["grants"]
            assert len(g1) == 1  # suspect goes out solo even at capacity 1
            assert g1[0]["suspect"] is True and g1[0]["attempt"] == 1
            # Quarantine: a worker holding a suspect lease gets nothing.
            assert client.lease("w1", capacity=2)["grants"] == []
            # The second suspect goes solo to a different idle worker.
            g2 = client.lease("w2")["grants"]
            assert len(g2) == 1
            assert g2[0]["suspect"] is True and g2[0]["attempt"] == 1
            assert g2[0]["hash"] != g1[0]["hash"]
            for grant in (g1[0], g2[0]):
                client.complete(grant["lease"],
                                ok_payload(grant["hash"], result))
            assert client.sweep(receipt["sweep"])["state"] == "done"

    def test_repeated_suspect_expiry_fails_terminally(self):
        with running_fabric(ttl=0.3, max_attempts=2) as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            job_hash = receipt["jobs"][0]["hash"]
            # Round 1 is fresh (uncharged on expiry); rounds 2..3 run solo
            # as suspects and each expiry charges an attempt.
            for round_no, want_attempt in enumerate([1, 1, 2]):
                grants = client.lease(f"crashy-{round_no}")["grants"]
                assert len(grants) == 1
                assert grants[0]["attempt"] == want_attempt
                assert grants[0]["suspect"] is (round_no > 0)
                wait_until(
                    lambda: client.fabric()["leases_in_flight"] == 0,
                    message=f"round {round_no} lease reaped")
            wait_until(
                lambda: client.sweep(receipt["sweep"])["state"] == "failed",
                message="sweep marked failed after charged expiries")
            job = client.job(job_hash)
            assert job["state"] == "failed"
            assert job["error"]["kind"] == "lease_expired"
            assert job["error"]["attempts"] == 2
            # Terminally failed: nothing left to grant.
            assert client.lease("fresh-worker")["grants"] == []
            stats = client.fabric()
            assert stats["expired_leases"] == 3
            assert stats["requeues"] == 2  # the terminal expiry fails instead

    def test_stale_completion_is_published_and_adopted(self, tmp_path):
        store = ResultStore(tmp_path)
        result = execute_job_cached(None)
        with running_fabric(store=store, ttl=0.3) as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            grant = client.lease("slowpoke")["grants"][0]
            wait_until(lambda: client.fabric()["requeues"] == 1,
                       message="lease reaped before upload")
            # The late upload still lands: published + adopted, not re-run.
            receipt2 = client.complete(grant["lease"],
                                       ok_payload(grant["hash"], result))
            assert receipt2["stale"] is True
            final = client.sweep(receipt["sweep"])
            assert final["state"] == "done"
            stats = client.fabric()
            assert stats["stale_completions"] == 1
            assert stats["adopted_results"] == 1
            # Published to the coordinator's store (restart = cache hit).
            assert store.load(job_from_wire(JOB_WIRE)) is not None
            # The adopted job left the suspect queue: nobody else gets it.
            assert client.lease("w2")["grants"] == []
            assert client.stats()["queue"]["executed"] == 1


class TestFabricWorker:
    def test_worker_drains_sweep_end_to_end(self):
        with running_fabric() as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE, JOB_WIRE_B]})
            worker = FabricWorker(service.url, worker_id="w1", capacity=2,
                                  poll_seconds=0.05,
                                  runner=execute_job_cached)
            worker.run(exit_on_idle=10)
            final = client.sweep(receipt["sweep"])
            assert final["state"] == "done"
            assert final["counts"]["done"] == 2
            assert worker.executed == 2 and worker.uploaded == 2
            events = list(client.events(receipt["sweep"]))
            running = [e for e in events if e["event"] == "running"]
            assert {e["worker"] for e in running} == {"w1"}
            stats = client.stats()["fabric"]
            assert stats["granted"] == 2 and stats["completed"] == 2
            assert stats["workers"]["detail"][0]["completed"] == 2
            assert client.stats()["queue"]["executed"] == 2

    def test_worker_failure_upload_is_final(self):
        def exploding(job):
            raise ValueError("tile does not fit")

        with running_fabric() as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            worker = FabricWorker(service.url, worker_id="w1",
                                  poll_seconds=0.05, runner=exploding)
            worker.run(exit_on_idle=10)
            final = client.sweep(receipt["sweep"])
            assert final["state"] == "failed"
            job = client.job(receipt["jobs"][0]["hash"])
            assert job["error"]["error_type"] == "ValueError"
            assert job["error"]["worker"] == "w1"
            stats = client.stats()["fabric"]
            assert stats["remote_failures"] == 1
            # An in-band failure is final: no requeue, no second grant.
            assert stats["requeues"] == 0 and stats["granted"] == 1

    def test_worker_local_store_is_a_cache_tier(self, tmp_path):
        local = ResultStore(tmp_path)
        local.save(job_from_wire(JOB_WIRE), execute_job_cached(None))

        def exploding(job):
            raise AssertionError("a local store hit must not simulate")

        with running_fabric() as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            worker = FabricWorker(service.url, worker_id="w1", store=local,
                                  poll_seconds=0.05, runner=exploding)
            worker.run(exit_on_idle=10)
            assert worker.local_hits == 1 and worker.executed == 0
            assert client.sweep(receipt["sweep"])["state"] == "done"

    def test_net_drop_faults_are_retried_through(self, monkeypatch,
                                                 tmp_path):
        state = tmp_path / "fault-state"
        state.mkdir()
        monkeypatch.setenv(faults.FAULT_ENV_VAR, "mode=net_drop:n=2")
        monkeypatch.setenv(faults.STATE_ENV_VAR, str(state))
        with running_fabric() as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            worker = FabricWorker(service.url, worker_id="w1",
                                  poll_seconds=0.05,
                                  runner=execute_job_cached)
            worker.run(exit_on_idle=10)
            assert worker.net_drops == 2
            assert client.sweep(receipt["sweep"])["state"] == "done"
            # Cross-process tokens burned on disk, one file per firing.
            assert len(list(state.iterdir())) == 2

    def test_lease_stall_expires_then_lands_stale_and_adopted(
            self, monkeypatch, tmp_path):
        state = tmp_path / "fault-state"
        state.mkdir()
        monkeypatch.setenv(faults.FAULT_ENV_VAR,
                           "mode=lease_stall:n=1:hang_seconds=30")
        monkeypatch.setenv(faults.STATE_ENV_VAR, str(state))
        with running_fabric(ttl=0.3) as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            worker = FabricWorker(service.url, worker_id="stalled",
                                  poll_seconds=0.05,
                                  runner=execute_job_cached)
            worker.run(exit_on_idle=10)
            final = client.sweep(receipt["sweep"])
            assert final["state"] == "done"
            assert worker.stale == 1
            stats = client.stats()["fabric"]
            assert stats["expired_leases"] == 1
            assert stats["adopted_results"] == 1
            assert stats["completed"] == 0  # never completed fresh


class TestFabricEndToEnd:
    def test_coordinator_restart_resubmit_is_pure_cache_hit(self, tmp_path):
        with running_fabric(store=ResultStore(tmp_path)) as (
                service, client):
            receipt = client.submit({"jobs": [JOB_WIRE, JOB_WIRE_B]})
            worker = FabricWorker(service.url, worker_id="w1", capacity=2,
                                  poll_seconds=0.05,
                                  runner=execute_job_cached)
            worker.run(exit_on_idle=10)
            assert client.sweep(receipt["sweep"])["state"] == "done"
        # "Coordinator restart": a fresh daemon over the same store.
        with running_fabric(store=ResultStore(tmp_path)) as (
                service, client):
            receipt = client.submit({"jobs": [JOB_WIRE, JOB_WIRE_B]})
            assert receipt["cache_hits"] == 2
            final = client.wait(receipt["sweep"], timeout=10)
            assert final["state"] == "done"
            stats = client.stats()
            assert stats["queue"]["executed"] == 0  # zero re-simulation
            assert stats["fabric"]["granted"] == 0  # no worker ever needed

    def test_worker_kill_mid_sweep_completes_bit_identical(self, tmp_path):
        """The acceptance scenario: 2 workers, one killed mid-sweep by
        ``worker_kill`` injection, sweep still completes and the merged
        results match a serial in-process run bit-for-bit."""
        store = ResultStore(tmp_path / "coordinator-store")
        state = tmp_path / "fault-state"
        state.mkdir()
        wires = [JOB_WIRE, dict(JOB_WIRE, variant="saris")]
        env = dict(os.environ)
        env[faults.FAULT_ENV_VAR] = "mode=worker_kill:n=1"
        env[faults.STATE_ENV_VAR] = str(state)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_SERVICE_URL", None)
        remote = {}
        with running_fabric(store=store, ttl=1.0) as (service, client):
            receipt = client.submit({"jobs": wires})
            procs = [subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "worker",
                 "--url", service.url, "--id", f"w{i}",
                 "--cache-dir", str(tmp_path / f"worker-{i}-store"),
                 "--poll", "0.2", "--exit-on-idle", "25"],
                cwd=str(REPO_ROOT), env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
                for i in (1, 2)]
            try:
                final = client.wait(receipt["sweep"], timeout=60)
                assert final["state"] == "done"
                assert final["counts"]["done"] == 2
                stats = client.stats()["fabric"]
                # The kill is visible in the lease machinery, and the
                # requeued grant was not charged (attempt stayed 1).
                assert stats["expired_leases"] >= 1
                assert stats["requeues"] >= 1
                events = list(client.events(receipt["sweep"]))
                requeued = [e for e in events if e["event"] == "requeued"]
                assert requeued and all(e["attempt"] == 1 for e in requeued)
                for member in receipt["jobs"]:
                    payload = client.job(member["hash"])
                    remote[member["hash"]] = KernelRunResult.from_json_dict(
                        payload["result"])
            finally:
                output = []
                for proc in procs:
                    try:
                        proc.wait(timeout=60)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                    output.append(proc.stdout.read().decode(
                        "utf-8", "replace"))
                    proc.stdout.close()
            codes = [proc.returncode for proc in procs]
            # Exactly one worker really died (kill -9 style), the survivor
            # drained the sweep and idled out cleanly.
            assert faults.WORKER_KILL_EXIT_CODE in codes, (codes, output)
            assert 0 in codes, (codes, output)
        # Bit-identity: the distributed merge equals a serial run.
        for wire in wires:
            job = job_from_wire(wire)
            serial = execute_job(job)
            assert remote[job.content_hash()].metrics_hash() == \
                serial.metrics_hash()


class TestFabricTracing:
    """Trace-context propagation across the lease protocol and real
    worker processes (the observability acceptance scenario)."""

    @pytest.fixture(autouse=True)
    def telemetry_on(self):
        from repro import obs

        before = obs.enabled()
        obs.set_enabled(True)
        yield
        obs.set_enabled(before)

    def test_grant_carries_trace_and_requeue_reuses_it(self):
        from repro import obs

        result = execute_job_cached(None)
        with running_fabric(ttl=0.4) as (service, client):
            receipt = client.submit({"jobs": [JOB_WIRE]})
            trace_id = client.sweep(receipt["sweep"])["trace"]
            assert trace_id
            grant = client.lease("doomed")["grants"][0]
            wire = grant["trace"]
            assert wire["trace"] == trace_id
            # The context rides beside the job spec, never inside it —
            # it must not perturb the content hash.
            assert "trace" not in grant["job"]
            assert job_from_wire(grant["job"]).content_hash() == \
                grant["hash"]
            wait_until(lambda: client.fabric()["requeues"] == 1,
                       message="lease reaped and job requeued")
            regrant = client.lease("rescuer")["grants"][0]
            # The requeued grant ships the SAME submit-span context, so
            # both attempts parent to the same submit span.
            assert regrant["trace"] == wire
            span1 = {"name": "attempt", "trace": wire["trace"],
                     "span": "aaaa0001", "parent": wire["span"],
                     "ts": time.time(), "dur": 0.05, "proc": "doomed",
                     "tid": 0, "attrs": {}}
            span2 = dict(span1, span="aaaa0002", proc="rescuer")
            client.complete(regrant["lease"],
                            dict(ok_payload(regrant["hash"], result),
                                 spans=[span2]))
            # The dead worker's late upload is stale, but its span is
            # still stitched into the trace.
            stale = client.complete(grant["lease"],
                                    dict(ok_payload(grant["hash"], result),
                                         spans=[span1]))
            assert stale["stale"] is True
            payload = client.trace(receipt["sweep"])
            attempts = [s for s in payload["spans"]
                        if s["name"] == "attempt"]
            assert {s["span"] for s in attempts} == \
                {"aaaa0001", "aaaa0002"}
            assert all(s["parent"] == wire["span"] for s in attempts)
            # An identical re-upload must not duplicate the span.
            client.complete(regrant["lease"],
                            dict(ok_payload(regrant["hash"], result),
                                 spans=[span2]))
            again = client.trace(receipt["sweep"])
            assert len([s for s in again["spans"]
                        if s["span"] == "aaaa0002"]) == 1
            # The export is a well-formed Chrome trace document.
            document = obs.chrome_trace(again["spans"])
            assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_trace_propagates_across_real_worker_processes(self, tmp_path):
        """Two genuine ``repro worker`` subprocesses: every span lands
        under the trace id minted at submit, worker attempt spans parent
        to the coordinator's submit spans."""
        from repro import obs

        store = ResultStore(tmp_path / "coordinator-store")
        wires = [JOB_WIRE, dict(JOB_WIRE, variant="saris")]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_SERVICE_URL", None)
        env.pop("REPRO_OBS", None)  # telemetry on in the workers
        with running_fabric(store=store, ttl=5.0) as (service, client):
            receipt = client.submit({"jobs": wires})
            trace_id = client.sweep(receipt["sweep"])["trace"]
            assert trace_id
            procs = [subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "worker",
                 "--url", service.url, "--id", f"w{i}",
                 "--cache-dir", str(tmp_path / f"worker-{i}-store"),
                 "--poll", "0.2", "--exit-on-idle", "15"],
                cwd=str(REPO_ROOT), env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
                for i in (1, 2)]
            try:
                final = client.wait(receipt["sweep"], timeout=120)
                assert final["state"] == "done"
                payload = client.trace(receipt["sweep"])
            finally:
                for proc in procs:
                    try:
                        proc.wait(timeout=60)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                    proc.stdout.close()
            assert payload["trace"] == trace_id
            spans = payload["spans"]
            assert spans and all(s["trace"] == trace_id for s in spans)
            roots = [s for s in spans if s["name"] == "sweep"]
            assert len(roots) == 1 and roots[0]["parent"] is None
            submits = {s["span"]: s for s in spans
                       if s["name"] == "submit"}
            assert len(submits) == 2
            assert all(s["parent"] == roots[0]["span"]
                       for s in submits.values())
            attempts = [s for s in spans if s["name"] == "attempt"]
            assert len(attempts) >= 2
            assert all(s["parent"] in submits for s in attempts)
            # Worker spans carry the worker id as their process label.
            worker_procs = {s["proc"] for s in attempts}
            assert worker_procs and worker_procs <= {"w1", "w2"}
            document = obs.chrome_trace(spans)
            named = {e["args"]["name"] for e in document["traceEvents"]
                     if e["ph"] == "M"}
            assert worker_procs <= named
