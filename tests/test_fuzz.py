"""Tests for the differential fuzz harness (repro.fuzz).

The fuzzer is only meaningful when the native engine is available — with a
single engine every case trivially "agrees with itself" — so the whole
module is skipped where no C compiler exists (matching
tests/test_native_engine.py).
"""

import json

import pytest

from repro.fuzz import (
    FuzzCase,
    check_case,
    generate_case,
    load_corpus,
    run_case,
    run_fuzz,
    shrink_case,
)
from repro.fuzz.harness import CORPUS_DIR, case_seed, diff_states
from repro.snitch import native

pytestmark = pytest.mark.skipif(
    not native.available(),
    reason=f"native engine unavailable: {native.disabled_reason()}")


class TestGenerator:
    def test_case_generation_is_deterministic(self):
        assert generate_case(42) == generate_case(42)
        assert generate_case(42) != generate_case(43)

    def test_case_stream_decoupled_from_budget(self):
        # Case i of a run is a pure function of (seed, i), so growing the
        # budget extends the stream instead of reshuffling it.
        assert case_seed(0, 5) == case_seed(0, 5)
        assert case_seed(0, 5) != case_seed(1, 5)

    def test_json_roundtrip(self):
        case = generate_case(7)
        assert FuzzCase.from_dict(
            json.loads(json.dumps(case.to_dict()))) == case

    def test_generated_cases_assemble_and_run(self):
        # A small sample of the stream must be valid by construction: no
        # assembler rejections, no guard faults, no model errors.
        for seed in range(5):
            result = run_case(generate_case(seed), force_python=False)
            assert result.error is None
            assert result.engine_used == "native"


class TestCorpusReplay:
    def test_corpus_is_nonempty(self):
        assert len(load_corpus(CORPUS_DIR)) >= 5

    @pytest.mark.parametrize(
        "case", load_corpus(CORPUS_DIR),
        ids=lambda c: f"seed{c.seed}")
    def test_corpus_case_bit_identical(self, case):
        assert check_case(case) == []


class TestRunFuzz:
    def test_small_budget_clean_and_deterministic(self):
        first = run_fuzz(budget=10, seed=0)
        second = run_fuzz(budget=10, seed=0)
        assert first.ok and second.ok
        assert first.cases_run == second.cases_run == 10
        assert first.native_cases == second.native_cases == 10
        assert first.fallback_cases == 0

    def test_progress_callback_sees_every_case(self):
        seen = []
        run_fuzz(budget=3, seed=1, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_report_serializes(self):
        report = run_fuzz(budget=2, seed=2)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["cases_run"] == 2


class TestMutationSelfTest:
    """The fuzzer must catch a deliberately corrupted native engine.

    ``native.corrupted()`` perturbs core 0's retired-instruction counter on
    every successful native run — a single-bit-flip stand-in for a real
    engine bug.  If the harness cannot detect and shrink that, it cannot be
    trusted to catch an authentic divergence either.
    """

    def test_corruption_detected(self):
        case = generate_case(0)
        assert check_case(case) == []
        with native.corrupted():
            diffs = check_case(case)
        assert any("int_retired" in d for d in diffs)
        assert check_case(case) == []  # clean again outside the context

    def test_corruption_shrinks_to_minimal_case(self):
        case = generate_case(0)
        with native.corrupted():
            shrunk = shrink_case(case)
            shrunk_diffs = check_case(shrunk)
        # The divergence survives shrinking and the case got smaller.
        assert shrunk_diffs
        assert len(shrunk.sources) <= len(case.sources)
        shrunk_lines = sum(len(s.splitlines()) for s in shrunk.sources)
        case_lines = sum(len(s.splitlines()) for s in case.sources)
        assert shrunk_lines < case_lines
        # Outside the corruption window the shrunk case is clean: the
        # divergence was the injected fault, not a shrinker artifact.
        assert check_case(shrunk) == []

    def test_run_fuzz_reports_and_saves_divergence(self, tmp_path):
        with native.corrupted():
            report = run_fuzz(budget=1, seed=0, corpus_dir=tmp_path)
        assert not report.ok
        assert len(report.divergences) == 1
        divergence = report.divergences[0]
        assert divergence.shrunk is not None
        assert divergence.shrunk_diffs
        saved = list(tmp_path.glob("divergence-*.json"))
        assert len(saved) == 1
        payload = json.loads(saved[0].read_text())
        assert payload["diffs"] and payload["shrunk_diffs"]
        # The saved reproducer replays: FuzzCase JSON is self-contained.
        replayed = FuzzCase.from_dict(payload["shrunk"])
        with native.corrupted():
            assert check_case(replayed)


class TestShrinker:
    def test_non_divergent_case_returned_unchanged(self):
        case = generate_case(3)
        assert shrink_case(case) == case

    def test_shrinker_respects_custom_predicate(self):
        # Shrink against an artificial oracle: "program 0 still contains a
        # fadd.d" — exercises ddmin without needing a real divergence.
        case = generate_case(11)
        if not any("fadd.d" in src for src in case.sources):
            pytest.skip("seed 11 generated no fadd.d; generator changed")

        def predicate(candidate):
            return any("fadd.d" in src for src in candidate.sources)

        shrunk = shrink_case(case, diverges=predicate)
        assert predicate(shrunk)
        assert (sum(len(s.splitlines()) for s in shrunk.sources)
                <= sum(len(s.splitlines()) for s in case.sources))


class TestDiffStates:
    def test_error_paths_compare_by_type_only(self):
        from repro.fuzz.harness import CaseResult
        a = CaseResult(state=None, engine_used="native",
                       error="ClusterError: deadlock at cycle 10")
        b = CaseResult(state=None, engine_used="python",
                       error="ClusterError: deadlock at cycle 12")
        assert diff_states(a, b) == []
        c = CaseResult(state=None, engine_used="python",
                       error="MemoryError_: out of range")
        assert diff_states(a, c)
