"""Listing 1: useful-compute fraction of the base vs SARIS point loop."""

from repro.analysis import format_table
from repro.sweep.artifacts import build_listing1


def test_listing1_instruction_mix(benchmark):
    artifact = benchmark(build_listing1)
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    result = artifact["data"]
    # Shape checks: SARIS roughly halves the loop length and raises the
    # useful-compute fraction well above the baseline's.
    assert result["saris"]["total"] < result["base"]["total"]
    assert result["saris"]["fraction"] > result["base"]["fraction"] + 0.15
    assert 0.25 <= result["base"]["fraction"] <= 0.50
    assert 0.50 <= result["saris"]["fraction"] <= 0.75
