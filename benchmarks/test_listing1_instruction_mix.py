"""Listing 1: useful-compute fraction of the base vs SARIS point loop."""

from repro.analysis import format_table
from repro.core.codegen_base import generate_base_program
from repro.core.codegen_saris import generate_saris_program
from repro.core.kernels import get_kernel
from repro.core.layout import build_layout
from repro.core.parallel import cluster_geometry
from repro.snitch.cluster import SnitchCluster


def point_loop_mix():
    """Generate both un-unrolled point loops for the 7-point star of Listing 1."""
    kernel = get_kernel("star3d7pt")
    cluster = SnitchCluster()
    layout = build_layout(kernel, cluster.allocator)
    geometry = cluster_geometry(kernel, layout.tile_shape)[0]
    base = generate_base_program(kernel, layout, geometry, max_unroll=1)
    saris = generate_saris_program(kernel, layout, geometry, cluster.allocator,
                                   max_block=1, max_body_unroll=1)
    result = {}
    for label, gen in (("base", base), ("saris", saris)):
        start, end = gen.program.loop_bounds("xloop")
        mix = gen.program.static_instruction_mix(start, end)
        total = sum(mix.values())
        result[label] = {
            "total": total,
            "compute": mix["fp_compute"],
            "fraction": mix["fp_compute"] / total,
            "mix": mix,
        }
    return result


def test_listing1_instruction_mix(benchmark, paper_reference):
    result = benchmark(point_loop_mix)
    rows = [
        ["loop instructions", result["base"]["total"], result["saris"]["total"],
         20, 12],
        ["useful compute instructions", result["base"]["compute"],
         result["saris"]["compute"], 7, 7],
        ["useful compute fraction",
         f"{result['base']['fraction']:.2f}", f"{result['saris']['fraction']:.2f}",
         paper_reference["listing1_base_compute_fraction"],
         paper_reference["listing1_saris_compute_fraction"]],
    ]
    print("\n" + format_table(
        ["metric", "base (ours)", "saris (ours)", "base (paper)", "saris (paper)"],
        rows, title="Listing 1: point-loop instruction mix, 7-point star, no unrolling"))
    # Shape checks: SARIS roughly halves the loop length and raises the
    # useful-compute fraction well above the baseline's.
    assert result["saris"]["total"] < result["base"]["total"]
    assert result["saris"]["fraction"] > result["base"]["fraction"] + 0.15
    assert 0.25 <= result["base"]["fraction"] <= 0.50
    assert 0.50 <= result["saris"]["fraction"] <= 0.75
