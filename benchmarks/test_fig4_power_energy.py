"""Figure 4: cluster power consumption and SARIS energy-efficiency gain."""

from repro.analysis import format_table
from repro.core.kernels import TABLE1_KERNELS
from repro.sweep.artifacts import build_fig4


def test_fig4_power_and_energy_efficiency(benchmark, paper_runs):
    artifact = benchmark(build_fig4, paper_runs)
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    data = artifact["data"]["per_kernel"]
    aggregates = artifact["data"]["geomean"]
    # Shape checks: SARIS burns more power but wins on energy for every code.
    for name in TABLE1_KERNELS:
        assert data[name]["saris_power_w"] > data[name]["base_power_w"]
        assert data[name]["energy_efficiency_gain"] > 1.0
    assert 0.15 <= aggregates["base_power_w"] <= 0.35
    assert 0.30 <= aggregates["saris_power_w"] <= 0.55
    assert 1.1 <= aggregates["gain"] <= 2.5
