"""Figure 4: cluster power consumption and SARIS energy-efficiency gain."""

from repro.analysis import format_table, geomean
from repro.core.kernels import TABLE1_KERNELS
from repro.energy import energy_comparison


def test_fig4_power_and_energy_efficiency(benchmark, paper_runs, paper_reference):
    def build():
        return {name: energy_comparison(paper_runs[name].base, paper_runs[name].saris)
                for name in TABLE1_KERNELS}

    data = benchmark(build)
    rows = [[name,
             f"{data[name]['base_power_w']:.3f}",
             f"{data[name]['saris_power_w']:.3f}",
             f"{data[name]['energy_efficiency_gain']:.2f}"]
            for name in TABLE1_KERNELS]
    base_power = geomean(d["base_power_w"] for d in data.values())
    saris_power = geomean(d["saris_power_w"] for d in data.values())
    gain = geomean(d["energy_efficiency_gain"] for d in data.values())
    rows.append(["geomean (measured)", f"{base_power:.3f}", f"{saris_power:.3f}",
                 f"{gain:.2f}"])
    rows.append(["geomean (paper)", f"{paper_reference['base_power_w']:.3f}",
                 f"{paper_reference['saris_power_w']:.3f}",
                 f"{paper_reference['energy_gain_geomean']:.2f}"])
    print("\n" + format_table(
        ["code", "base power [W]", "saris power [W]", "energy eff. gain"], rows,
        title="Figure 4: cluster power and SARIS energy-efficiency gain"))
    # Shape checks: SARIS burns more power but wins on energy for every code.
    for name in TABLE1_KERNELS:
        assert data[name]["saris_power_w"] > data[name]["base_power_w"]
        assert data[name]["energy_efficiency_gain"] > 1.0
    assert 0.15 <= base_power <= 0.35
    assert 0.30 <= saris_power <= 0.55
    assert 1.1 <= gain <= 2.5
