"""CI perf smoke: run the quick simspeed benchmark and flag regressions.

Two checks, from robust to advisory:

1. **Engine check (hardware-independent).** The native symmetry-folded
   engine must be active (``engine == "folded-native"``) — the realistic
   catastrophic regression is the C engine silently failing to build and
   every job falling back to the Python reference engine.  Additionally the
   folded engine must beat the in-process Python engine by at least
   ``--min-fold-speedup`` (default 3x; the recorded figure is >20x), which
   needs no cross-machine baseline at all.
2. **Throughput floor vs the committed baseline.** The fresh best
   simulated-cycles-per-second figure must not regress more than
   ``--tolerance`` (default 25%, the value documented in
   ``.github/workflows/ci.yml``) below the committed
   ``BENCH_simspeed.json``.  This is deliberately generous because hosted
   runners and the container class that recorded the baseline are different
   hardware; check 1 is the authoritative guard, this one catches
   order-of-magnitude rot on comparable machines.

The same floor is applied to the ``scaleout`` leg's simulated
cluster-cycles-per-second (the direct 2-cluster simulation of
``repro.scaleout.sim``), so multi-cluster throughput is guarded alongside
the single-cluster sweep.

A third **telemetry-overhead** leg times warm ``run_kernel`` batches with
telemetry enabled vs ``REPRO_OBS``-disabled (min-of-batches on both sides,
interleaved, so scheduler noise largely cancels) and fails when the
instrumented path is more than ``--obs-overhead-tolerance`` (default 3%)
slower — the observability layer must stay effectively free.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--baseline BENCH_simspeed.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path


def measure_obs_overhead(rounds: int = 40) -> float:
    """Fractional slowdown of telemetry-on vs telemetry-off run_kernel.

    Warm paper-size runs, modes alternated within each round so every
    pair shares the same scheduler/frequency conditions; the estimate is
    the **median of the paired per-round deltas** over the median off
    time.  Pairing cancels slow drift and the median kills the heavy
    jitter tail of shared CI containers — min-vs-min comparisons swing
    by ±10% on such machines, paired medians stay within ~1%.  The
    kernel is the longest-running warm paper-tile workload so the
    constant per-run instrumentation cost (a handful of spans and
    counters, tens of microseconds) is measured against a realistic
    denominator.  Restores the process-wide toggle before returning.
    """
    from repro import obs, run_kernel

    kernel = "j3d27pt"  # ~15-20ms warm: the longest quick-bench workload
    before = obs.enabled()

    def one_run() -> float:
        start = time.perf_counter()
        run_kernel(kernel, variant="base")
        return time.perf_counter() - start

    try:
        for value in (False, True):  # warm caches in both modes
            obs.set_enabled(value)
            run_kernel(kernel, variant="base")
        deltas, offs = [], []
        for i in range(rounds):
            # Alternate which mode goes first so drift within a pair
            # biases neither side.
            order = (False, True) if i % 2 == 0 else (True, False)
            seconds = {}
            for value in order:
                obs.set_enabled(value)
                seconds[value] = one_run()
            deltas.append(seconds[True] - seconds[False])
            offs.append(seconds[False])
    finally:
        obs.set_enabled(before)
    deltas.sort()
    offs.sort()
    median_delta = deltas[len(deltas) // 2]
    median_off = offs[len(offs) // 2]
    return median_delta / median_off


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_simspeed.json",
                        help="committed benchmark report to compare against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default: 0.25)")
    parser.add_argument("--min-fold-speedup", type=float, default=3.0,
                        help="minimum folded-vs-Python in-run speedup "
                             "(default: 3.0; 0 disables)")
    parser.add_argument("--allow-python-engine", action="store_true",
                        help="do not fail when the native engine is "
                             "unavailable (environments without cffi/cc)")
    parser.add_argument("--obs-overhead-tolerance", type=float,
                        default=0.03,
                        help="maximum fractional telemetry overhead "
                             "(default: 0.03; 0 disables the check)")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    baseline = json.loads(baseline_path.read_text())
    committed = float(baseline["best_cycles_per_second"])

    from repro.bench import run_benchmark, run_sweep_timing
    from repro.snitch import native

    failures = []

    # Three repetitions (one process-cold, two warm): the comparison uses the
    # best, which tames the run-to-run noise of a shared/1-CPU container.
    with tempfile.TemporaryDirectory(prefix="perf-smoke-") as scratch_dir:
        report = run_benchmark(repetitions=3, quick=True,
                               output=str(Path(scratch_dir) / "quick.json"))
    fresh = float(report["best_cycles_per_second"])

    skip_floor = False
    if report.get("engine") != "folded-native":
        message = (f"native engine inactive "
                   f"({native.disabled_reason() or 'fell back'})")
        if args.allow_python_engine:
            # The committed baseline was recorded with the folded engine; a
            # Python-engine run cannot meaningfully meet its floor.
            print(f"perf-smoke: WARNING: {message}; skipping baseline floor")
            skip_floor = True
        else:
            failures.append(message)
    elif args.min_fold_speedup > 0:
        with native.forced_python():
            unfolded = run_sweep_timing()
        fold_speedup = (unfolded["wall_seconds"]
                        / report["best_wall_seconds"])
        print(f"perf-smoke: fold speedup {fold_speedup:.1f}x "
              f"(floor {args.min_fold_speedup:.1f}x)")
        if fold_speedup < args.min_fold_speedup:
            failures.append(
                f"fold speedup {fold_speedup:.1f}x below "
                f"{args.min_fold_speedup:.1f}x")

    floor = committed * (1.0 - args.tolerance)
    if fresh < floor and not skip_floor:
        failures.append(
            f"fresh {fresh:,.0f} cycles/s below floor {floor:,.0f}")
    print(f"perf-smoke: fresh {fresh:,.0f} cycles/s vs committed "
          f"{committed:,.0f} cycles/s (floor {floor:,.0f}, "
          f"tolerance {args.tolerance:.0%})")

    # Multi-cluster throughput: the quick report carries a warm direct
    # 2-cluster scaleout leg; hold it to the same relative floor.
    committed_scaleout = baseline.get("scaleout", {}).get(
        "cluster_cycles_per_second")
    fresh_scaleout = report.get("scaleout", {}).get(
        "cluster_cycles_per_second")
    if committed_scaleout and fresh_scaleout:
        scaleout_floor = float(committed_scaleout) * (1.0 - args.tolerance)
        if fresh_scaleout < scaleout_floor and not skip_floor:
            failures.append(
                f"scaleout {fresh_scaleout:,.0f} cluster-cycles/s below "
                f"floor {scaleout_floor:,.0f}")
        print(f"perf-smoke: scaleout {fresh_scaleout:,.0f} cluster-cycles/s "
              f"vs committed {committed_scaleout:,.0f} "
              f"(floor {scaleout_floor:,.0f})")
    print(f"  engine: {report.get('engine')}  cold "
          f"{report['cold_wall_seconds']:.2f} s, best "
          f"{report['best_wall_seconds']:.2f} s")

    if args.obs_overhead_tolerance > 0:
        overhead = measure_obs_overhead()
        print(f"perf-smoke: telemetry overhead {overhead:+.1%} "
              f"(ceiling {args.obs_overhead_tolerance:.0%})")
        if overhead > args.obs_overhead_tolerance:
            failures.append(
                f"telemetry overhead {overhead:+.1%} above "
                f"{args.obs_overhead_tolerance:.0%}")

    if failures:
        for failure in failures:
            print(f"perf-smoke: REGRESSION: {failure}")
        return 1
    print("perf-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
