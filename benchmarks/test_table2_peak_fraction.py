"""Table 2: fraction of peak compute vs prior CPU/GPU/WSE stencil software."""

from repro.analysis import format_table
from repro.core.kernels import TABLE1_KERNELS, get_kernel
from repro.scaleout import (
    best_gpu_fraction,
    estimate_scaleout_pair,
    peak_fraction_table,
)


def test_table2_fraction_of_peak(benchmark, paper_runs, paper_reference):
    def build():
        best = 0.0
        best_kernel = None
        for name in TABLE1_KERNELS:
            pair = paper_runs[name]
            est = estimate_scaleout_pair(get_kernel(name), pair.base, pair.saris)
            if est["saris"].fraction_of_peak > best:
                best = est["saris"].fraction_of_peak
                best_kernel = name
        return best, best_kernel

    best_fraction, best_kernel = benchmark(build)
    rows = [[r["category"], r["work"], r["platform"], r["precision"],
             f"{r['peak_fraction']:.2f}"]
            for r in peak_fraction_table(best_fraction)]
    print("\n" + format_table(
        ["category", "work", "platform", "precision", "% of peak"], rows,
        title=f"Table 2: highest fraction of peak compute "
              f"(our best kernel: {best_kernel}; paper reports "
              f"{paper_reference['table2_saris_fraction']:.2f})"))
    # Shape checks: our scaled-out SARIS beats every CPU/WSE entry and is in
    # the same league as the leading GPU code generator (the paper exceeds it
    # by 15 percentage points; our more conservative baseline/simulator keeps
    # the ordering but a smaller margin is acceptable).
    assert 0.4 <= best_fraction <= 0.9
    assert best_fraction > 0.45  # above every CPU and WSE entry
    assert best_fraction > best_gpu_fraction() - 0.15
