"""Table 2: fraction of peak compute vs prior CPU/GPU/WSE stencil software."""

from repro.analysis import format_table
from repro.sweep.artifacts import build_table2


def test_table2_fraction_of_peak(benchmark, paper_runs):
    artifact = benchmark(build_table2, paper_runs)
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    best_fraction = artifact["data"]["best_fraction"]
    # Shape checks: our scaled-out SARIS beats every CPU/WSE entry and is in
    # the same league as the leading GPU code generator (the paper exceeds it
    # by 15 percentage points; our more conservative baseline/simulator keeps
    # the ordering but a smaller margin is acceptable).
    assert 0.4 <= best_fraction <= 0.9
    assert best_fraction > 0.45  # above every CPU and WSE entry
    assert best_fraction > artifact["data"]["best_gpu_fraction"] - 0.15
