"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the contribution of individual
SARIS ingredients on representative kernels:

* FREP hardware loop on vs off (pseudo-dual-issue),
* balanced SR0/SR1 partitioning vs the degenerate all-on-one-stream mapping
  (approximated by comparing stream balance and utilization),
* unrolling / block size of the SARIS point loop,
* the step-3 policy (stream the output stores vs stream the coefficients).

All simulations run through the shared sweep engine (see the session-scoped
``ablation_runs`` fixture); the tables are built by the same artifact
builders the ``repro reproduce`` CLI uses.
"""

from repro.analysis import format_table
from repro.sweep.artifacts import ABLATION_BLOCKS, build_ablations


def _artifact(ablation_runs, paper_runs, title_prefix):
    artifacts = build_ablations(ablation_runs, paper_runs)
    for artifact in artifacts:
        if artifact["title"].startswith(title_prefix):
            return artifact
    raise AssertionError(f"no ablation artifact titled {title_prefix!r}")


def test_ablation_frep(benchmark, ablation_runs, paper_runs):
    artifact = benchmark(_artifact, ablation_runs, paper_runs,
                         "Ablation: FREP")
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    with_frep = artifact["data"]["with_frep"]
    without = artifact["data"]["without_frep"]
    assert with_frep.correct and without.correct
    assert with_frep.cycles <= without.cycles
    assert with_frep.fpu_util >= without.fpu_util - 0.02


def test_ablation_unroll(benchmark, ablation_runs, paper_runs):
    artifact = benchmark(_artifact, ablation_runs, paper_runs,
                         "Ablation: SARIS block size")
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    results = artifact["data"]
    assert set(results) == set(ABLATION_BLOCKS)
    for r in results.values():
        assert r.correct
    assert results[16].cycles < results[1].cycles
    assert results[16].fpu_util > results[1].fpu_util


def test_ablation_sr2_policy(benchmark, ablation_runs, paper_runs):
    artifact = benchmark(_artifact, ablation_runs, paper_runs,
                         "Ablation: role of the remaining affine stream")
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    stores_streamed = artifact["data"]["stores"]
    coeffs_streamed = artifact["data"]["coeffs"]
    assert stores_streamed.correct and coeffs_streamed.correct
    # With few coefficients, streaming the stores is the better policy — this
    # is exactly why step 3 of the method prefers it when registers suffice.
    assert stores_streamed.cycles <= coeffs_streamed.cycles * 1.1


def test_ablation_stream_balance(benchmark, ablation_runs, paper_runs):
    artifact = benchmark(_artifact, ablation_runs, paper_runs,
                         "Ablation: stream partition balance")
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    # Step 2 of the method requires near-balanced utilization of SR0 and SR1.
    for name, (balance, _util) in artifact["data"].items():
        assert balance >= 0.7, f"{name}: unbalanced stream partition"
