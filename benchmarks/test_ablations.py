"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the contribution of individual
SARIS ingredients on representative kernels:

* FREP hardware loop on vs off (pseudo-dual-issue),
* balanced SR0/SR1 partitioning vs the degenerate all-on-one-stream mapping
  (approximated by comparing stream balance and utilization),
* unrolling / block size of the SARIS point loop,
* the step-3 policy (stream the output stores vs stream the coefficients).
"""

import pytest

from repro import run_kernel
from repro.analysis import format_table


@pytest.fixture(scope="module")
def frep_ablation():
    with_frep = run_kernel("jacobi_2d", variant="saris")
    without = run_kernel("jacobi_2d", variant="saris", use_frep=False)
    return with_frep, without


def test_ablation_frep(benchmark, frep_ablation):
    with_frep, without = frep_ablation
    rows = [
        ["cycles", with_frep.cycles, without.cycles],
        ["FPU utilization", f"{with_frep.fpu_util:.3f}", f"{without.fpu_util:.3f}"],
        ["IPC", f"{with_frep.ipc:.3f}", f"{without.ipc:.3f}"],
    ]
    benchmark(lambda: rows)
    print("\n" + format_table(["metric", "with FREP", "without FREP"], rows,
                              title="Ablation: FREP hardware loop (jacobi_2d, saris)"))
    assert with_frep.correct and without.correct
    assert with_frep.cycles <= without.cycles
    assert with_frep.fpu_util >= without.fpu_util - 0.02


def test_ablation_unroll(benchmark):
    def build():
        results = {}
        for max_block in (1, 4, 16):
            results[max_block] = run_kernel("jacobi_2d", variant="saris",
                                            max_block=max_block)
        return results

    results = benchmark(build)
    rows = [[block, r.cycles, f"{r.fpu_util:.3f}"]
            for block, r in sorted(results.items())]
    print("\n" + format_table(["block points per launch", "cycles", "FPU util"],
                              rows, title="Ablation: SARIS block size (jacobi_2d)"))
    for r in results.values():
        assert r.correct
    assert results[16].cycles < results[1].cycles
    assert results[16].fpu_util > results[1].fpu_util


def test_ablation_sr2_policy(benchmark):
    def build():
        stores_streamed = run_kernel("star3d7pt", variant="saris")
        coeffs_streamed = run_kernel("star3d7pt", variant="saris",
                                     force_store_streamed=False)
        return stores_streamed, coeffs_streamed

    stores_streamed, coeffs_streamed = benchmark(build)
    rows = [
        ["cycles", stores_streamed.cycles, coeffs_streamed.cycles],
        ["FPU utilization", f"{stores_streamed.fpu_util:.3f}",
         f"{coeffs_streamed.fpu_util:.3f}"],
    ]
    print("\n" + format_table(
        ["metric", "SR2 = output stores", "SR2 = coefficients"], rows,
        title="Ablation: role of the remaining affine stream register (star3d7pt)"))
    assert stores_streamed.correct and coeffs_streamed.correct
    # With few coefficients, streaming the stores is the better policy — this
    # is exactly why step 3 of the method prefers it when registers suffice.
    assert stores_streamed.cycles <= coeffs_streamed.cycles * 1.1


def test_ablation_stream_balance(benchmark, paper_runs):
    def build():
        rows = {}
        for name, pair in paper_runs.items():
            info = pair.saris.program_info[0]
            rows[name] = (info["stream_balance"], pair.saris.fpu_util)
        return rows

    data = benchmark(build)
    rows = [[name, f"{balance:.2f}", f"{util:.2f}"]
            for name, (balance, util) in sorted(data.items())]
    print("\n" + format_table(["code", "SR0/SR1 balance", "saris FPU util"], rows,
                              title="Ablation: stream partition balance per kernel"))
    # Step 2 of the method requires near-balanced utilization of SR0 and SR1.
    for name, (balance, _util) in data.items():
        assert balance >= 0.7, f"{name}: unbalanced stream partition"
