"""Figure 3a: execution speedup of saris over base code variants."""

from repro.analysis import format_table, geomean
from repro.core.kernels import TABLE1_KERNELS


def test_fig3a_speedup(benchmark, paper_runs, paper_reference):
    def build():
        return {name: paper_runs[name].speedup for name in TABLE1_KERNELS}

    speedups = benchmark(build)
    rows = []
    for name in TABLE1_KERNELS:
        rows.append([name, f"{speedups[name]:.2f}",
                     f"{paper_reference['speedup'][name]:.2f}"])
    measured_geomean = geomean(speedups.values())
    rows.append(["geomean", f"{measured_geomean:.2f}",
                 f"{paper_reference['speedup_geomean']:.2f}"])
    print("\n" + format_table(["code", "speedup (measured)", "speedup (paper)"],
                              rows, title="Figure 3a: SARIS speedup over base"))
    # Shape checks.
    assert all(s > 1.2 for s in speedups.values()), "SARIS must win on every kernel"
    assert 1.5 <= measured_geomean <= 4.0
    # The register-bound codes (most FLOPs/point) must show the largest gains.
    assert speedups["j3d27pt"] > speedups["jacobi_2d"]
    assert speedups["box3d1r"] > geomean(
        [speedups[n] for n in TABLE1_KERNELS[:6]])
