"""Figure 3a: execution speedup of saris over base code variants."""

from repro.analysis import format_table, geomean
from repro.core.kernels import TABLE1_KERNELS
from repro.sweep.artifacts import build_fig3a


def test_fig3a_speedup(benchmark, paper_runs):
    artifact = benchmark(build_fig3a, paper_runs)
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    speedups = artifact["data"]["speedups"]
    measured_geomean = artifact["data"]["geomean"]
    # Shape checks.
    assert all(s > 1.2 for s in speedups.values()), "SARIS must win on every kernel"
    assert 1.5 <= measured_geomean <= 4.0
    # The register-bound codes (most FLOPs/point) must show the largest gains.
    assert speedups["j3d27pt"] > speedups["jacobi_2d"]
    assert speedups["box3d1r"] > geomean(
        [speedups[n] for n in TABLE1_KERNELS[:6]])
