"""Thin shim: the simulation-speed harness lives in :mod:`repro.bench`.

Kept so the historical invocation keeps working from a repo checkout::

    PYTHONPATH=src python benchmarks/bench_simspeed.py [-o OUT] [-r REPS] [--quick]

See :mod:`repro.bench.simspeed` for the implementation (Table-1 sweep timing,
the folded-vs-unfolded engine comparison, per-machine scaling, and the
serial / parallel / warm-cache sweep-engine suite benchmark).
"""

from __future__ import annotations

import sys

from repro.bench.simspeed import (  # noqa: F401  (re-exported API)
    main,
    print_report,
    run_benchmark,
    run_engine_comparison,
    run_machine_scaling,
    run_suite_benchmark,
    run_sweep_timing,
)

if __name__ == "__main__":
    sys.exit(main())
