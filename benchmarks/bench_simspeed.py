"""Simulation-speed benchmark: times the full Table-1 base+SARIS sweep.

This harness measures how fast the *simulator itself* runs — wall seconds and
simulated cycles per second for the exact sweep every figure/table benchmark
consumes (all ten Table-1 kernels, both variants, paper tile sizes) — and
writes the result to ``BENCH_simspeed.json`` so future changes have a
performance trajectory to regress against.

Two sweep repetitions are timed by default: the first is *cold* (codegen and
stream-sequence caches empty, as in a fresh benchmark session), later ones are
*warm* (memoized codegen, the steady state of a long-running service or a
pytest session).  The headline cycles-per-second figure uses the best
repetition.

Usage::

    PYTHONPATH=src python benchmarks/bench_simspeed.py [-o OUTPUT] [-r REPS]
    PYTHONPATH=src python -m repro.cli bench-speed

Reference point: the seed (pre-fast-engine) simulator ran this sweep in
~12.7 s on the machine that recorded ``tests/golden_cycles.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

from repro import compare_variants
from repro.core.kernels import TABLE1_KERNELS


def run_sweep() -> Dict[str, object]:
    """Run the Table-1 base+SARIS sweep once; return timing and cycle totals."""
    per_kernel: Dict[str, Dict[str, object]] = {}
    total_cycles = 0
    start = time.perf_counter()
    for name in TABLE1_KERNELS:
        kernel_start = time.perf_counter()
        pair = compare_variants(name)
        cycles = pair.base.cycles + pair.saris.cycles
        total_cycles += cycles
        per_kernel[name] = {
            "wall_seconds": round(time.perf_counter() - kernel_start, 4),
            "base_cycles": pair.base.cycles,
            "saris_cycles": pair.saris.cycles,
            "speedup": round(pair.speedup, 3),
        }
    wall = time.perf_counter() - start
    return {
        "wall_seconds": round(wall, 3),
        "simulated_cycles": total_cycles,
        "cycles_per_second": round(total_cycles / wall, 1),
        "kernels": per_kernel,
    }


def run_benchmark(repetitions: int = 2,
                  output: Optional[str] = "BENCH_simspeed.json") -> Dict[str, object]:
    """Time ``repetitions`` sweeps and (optionally) write the JSON report."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    sweeps: List[Dict[str, object]] = []
    for _ in range(repetitions):
        sweeps.append(run_sweep())
    best = min(sweeps, key=lambda sweep: sweep["wall_seconds"])
    report = {
        "benchmark": "table1_sweep",
        "description": "Full Table-1 base+SARIS sweep at paper tile sizes",
        "python": platform.python_version(),
        "repetitions": repetitions,
        "cold_wall_seconds": sweeps[0]["wall_seconds"],
        "best_wall_seconds": best["wall_seconds"],
        "simulated_cycles": best["simulated_cycles"],
        "best_cycles_per_second": best["cycles_per_second"],
        "sweeps": sweeps,
    }
    if output:
        with open(output, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return report


def print_report(report: Dict[str, object]) -> None:
    """Human-readable summary of a benchmark report."""
    print(f"Table-1 sweep ({report['repetitions']} repetitions, "
          f"python {report['python']}):")
    for idx, sweep in enumerate(report["sweeps"]):
        label = "cold" if idx == 0 else "warm"
        print(f"  sweep {idx} ({label}): {sweep['wall_seconds']:.2f} s wall, "
              f"{sweep['cycles_per_second']:,.0f} simulated cycles/s")
    print(f"  best: {report['best_wall_seconds']:.2f} s "
          f"({report['best_cycles_per_second']:,.0f} cycles/s) for "
          f"{report['simulated_cycles']:,} simulated cycles")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_simspeed.json",
                        help="JSON report path (default: %(default)s)")
    parser.add_argument("-r", "--repetitions", type=int, default=2,
                        help="number of sweep repetitions (default: %(default)s)")
    args = parser.parse_args(argv)
    report = run_benchmark(repetitions=args.repetitions, output=args.output)
    print_report(report)
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
