"""Shared fixtures for the benchmark harness.

Every figure/table benchmark consumes the same set of single-cluster
simulations (all ten Table-1 kernels, both variants, paper tile sizes), so
they are run once per session and cached here.
"""

from __future__ import annotations

import pytest

from repro import compare_variants
from repro.core.kernels import TABLE1_KERNELS

#: Paper reference values used in the printed comparisons.
PAPER = {
    "speedup_geomean": 2.72,
    "speedup": {"jacobi_2d": 2.36, "j2d5pt": 2.52, "box2d1r": 2.48, "j2d9pt": 2.41,
                "j2d9pt_gol": 2.42, "star2d3r": 2.40, "star3d2r": 2.42,
                "ac_iso_cd": 3.01, "box3d1r": 3.48, "j3d27pt": 3.87},
    "base_fpu_util_geomean": 0.35,
    "saris_fpu_util_geomean": 0.81,
    "base_ipc_geomean": 0.89,
    "saris_ipc_geomean": 1.11,
    "base_power_w": 0.227,
    "saris_power_w": 0.390,
    "energy_gain_geomean": 1.58,
    "energy_gain_range": (1.27, 2.17),
    "scaleout_saris_util_geomean": 0.64,
    "scaleout_speedup_geomean": 2.14,
    "scaleout_peak_gflops": 406.0,
    "scaleout_cmtr": {"jacobi_2d": 0.48, "j2d5pt": 0.53, "box2d1r": 0.94,
                      "j2d9pt": 0.80, "j2d9pt_gol": 0.86, "star3d2r": 0.80,
                      "ac_iso_cd": 0.67},
    "table2_saris_fraction": 0.79,
    "table2_an5d_fraction": 0.69,
    "listing1_base_compute_fraction": 0.35,
    "listing1_saris_compute_fraction": 0.58,
}


@pytest.fixture(scope="session")
def paper_runs():
    """Base/SARIS comparisons for every Table-1 kernel at paper tile sizes."""
    return {name: compare_variants(name) for name in TABLE1_KERNELS}


@pytest.fixture(scope="session")
def paper_reference():
    """Reference values reported by the paper (for printed comparisons)."""
    return PAPER
