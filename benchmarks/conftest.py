"""Shared fixtures for the benchmark harness.

Every figure/table benchmark consumes the same set of single-cluster
simulations (all ten Table-1 kernels, both variants, paper tile sizes).
They are produced once per session through the parallel sweep engine, with
the persistent result store under ``.repro_cache/`` making warm re-runs of
the whole benchmark suite near-instant.  Worker count follows
``REPRO_SWEEP_WORKERS`` (default: CPU count).
"""

from __future__ import annotations

import pytest

from repro.sweep import ResultStore
from repro.sweep.artifacts import run_ablation_sweep, run_paper_sweep


@pytest.fixture(scope="session")
def paper_runs():
    """Base/saris comparisons for every Table-1 kernel at paper tile sizes."""
    return run_paper_sweep(store=ResultStore())


@pytest.fixture(scope="session")
def ablation_runs():
    """The extra ablation simulations, keyed by role (see ablation_jobs)."""
    return run_ablation_sweep(store=ResultStore())
