"""Figure 5: FPU utilization, speedup and CMTR on the Manticore-256s scaleout."""

from repro.analysis import format_table
from repro.sweep.artifacts import build_fig5


def test_fig5_manycore_scaleout(benchmark, paper_runs):
    artifact = benchmark(build_fig5, paper_runs)
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    data = artifact["data"]["per_kernel"]
    aggregates = artifact["data"]["aggregates"]

    # Shape checks.
    low_intensity = ["jacobi_2d", "j2d5pt"]
    high_intensity = ["box3d1r", "j3d27pt"]
    for name in low_intensity:
        assert data[name]["memory_bound"], f"{name} should be memory-bound at scale"
    for name in high_intensity:
        assert not data[name]["memory_bound"], f"{name} should stay compute-bound"
    # The 3D halo effect pushes star3d2r / ac_iso_cd back toward memory-boundedness.
    assert data["star3d2r"]["cmtr"] < data["star2d3r"]["cmtr"]
    assert data["ac_iso_cd"]["memory_bound"]
    # SARIS still delivers a clear aggregate win and a sensible peak throughput.
    assert aggregates["speedup"] > 1.2
    assert 200.0 <= aggregates["peak_gflops"] <= 512.0
    assert 0.35 <= aggregates["saris_util"] <= 0.9
