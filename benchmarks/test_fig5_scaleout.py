"""Figure 5: FPU utilization, speedup and CMTR on the Manticore-256s scaleout."""

from repro.analysis import format_table, geomean
from repro.core.kernels import TABLE1_KERNELS, get_kernel
from repro.scaleout import estimate_scaleout_pair


def test_fig5_manycore_scaleout(benchmark, paper_runs, paper_reference):
    def build():
        data = {}
        for name in TABLE1_KERNELS:
            pair = paper_runs[name]
            data[name] = estimate_scaleout_pair(get_kernel(name), pair.base,
                                                pair.saris)
        return data

    data = benchmark(build)
    rows = []
    for name in TABLE1_KERNELS:
        entry = data[name]
        paper_cmtr = paper_reference["scaleout_cmtr"].get(name)
        rows.append([
            name,
            f"{entry['base'].fpu_util:.2f}",
            f"{entry['saris'].fpu_util:.2f}",
            f"{entry['speedup']:.2f}",
            f"{entry['cmtr']:.2f}" if entry["memory_bound"] else "-",
            f"{paper_cmtr:.2f}" if paper_cmtr else "-",
            f"{entry['saris'].gflops:.0f}",
        ])
    saris_util = geomean(d["saris"].fpu_util for d in data.values())
    speedup = geomean(d["speedup"] for d in data.values())
    peak = max(d["saris"].gflops for d in data.values())
    rows.append(["geomean/max (measured)", "", f"{saris_util:.2f}", f"{speedup:.2f}",
                 "", "", f"{peak:.0f}"])
    rows.append(["geomean/max (paper)", "0.35",
                 f"{paper_reference['scaleout_saris_util_geomean']:.2f}",
                 f"{paper_reference['scaleout_speedup_geomean']:.2f}", "", "",
                 f"{paper_reference['scaleout_peak_gflops']:.0f}"])
    print("\n" + format_table(
        ["code", "base util", "saris util", "speedup",
         "CMTR (measured)", "CMTR (paper)", "saris GFLOP/s"], rows,
        title="Figure 5: Manticore-256s scaleout estimates"))

    # Shape checks.
    low_intensity = ["jacobi_2d", "j2d5pt"]
    high_intensity = ["box3d1r", "j3d27pt"]
    for name in low_intensity:
        assert data[name]["memory_bound"], f"{name} should be memory-bound at scale"
    for name in high_intensity:
        assert not data[name]["memory_bound"], f"{name} should stay compute-bound"
    # The 3D halo effect pushes star3d2r / ac_iso_cd back toward memory-boundedness.
    assert data["star3d2r"]["cmtr"] < data["star2d3r"]["cmtr"]
    assert data["ac_iso_cd"]["memory_bound"]
    # SARIS still delivers a clear aggregate win and a sensible peak throughput.
    assert speedup > 1.2
    assert 200.0 <= peak <= 512.0
    assert 0.35 <= saris_util <= 0.9
