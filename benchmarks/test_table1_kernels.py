"""Table 1: implemented stencil codes and their per-point characteristics."""

from repro.analysis import format_table
from repro.sweep.artifacts import build_table1


def test_table1_characteristics(benchmark, paper_runs):
    artifact = benchmark(build_table1, paper_runs)
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    for name, entry in artifact["data"].items():
        assert entry["measured"] == entry["paper"], (
            f"{name}: characteristics deviate from Table 1")
