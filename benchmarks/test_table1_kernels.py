"""Table 1: implemented stencil codes and their per-point characteristics."""

from repro.analysis import format_table
from repro.core.kernels import TABLE1_EXPECTED, TABLE1_KERNELS, get_kernel


def build_table1():
    rows = []
    for name in TABLE1_KERNELS:
        kernel = get_kernel(name)
        expected = TABLE1_EXPECTED[name]
        rows.append([
            name, f"{kernel.dims}D", kernel.radius,
            kernel.loads_per_point, kernel.coeffs_per_point, kernel.flops_per_point,
            expected["loads"], expected["coeffs"], expected["flops"],
        ])
    return rows


def test_table1_characteristics(benchmark):
    rows = benchmark(build_table1)
    print("\n" + format_table(
        ["code", "dims", "rad", "loads", "coeffs", "flops",
         "paper loads", "paper coeffs", "paper flops"],
        rows, title="Table 1: stencil code characteristics (measured vs paper)"))
    for row in rows:
        assert row[3:6] == row[6:9], f"{row[0]}: characteristics deviate from Table 1"
