"""Figure 3b: FPU utilization and per-core IPC for both variants."""

from repro.analysis import format_table, geomean
from repro.core.kernels import TABLE1_KERNELS


def test_fig3b_fpu_util_and_ipc(benchmark, paper_runs, paper_reference):
    def build():
        rows = {}
        for name in TABLE1_KERNELS:
            pair = paper_runs[name]
            rows[name] = {
                "base_util": pair.base.fpu_util,
                "saris_util": pair.saris.fpu_util,
                "base_ipc": pair.base.ipc,
                "saris_ipc": pair.saris.ipc,
            }
        return rows

    data = benchmark(build)
    rows = [[name,
             f"{data[name]['base_util']:.2f}", f"{data[name]['saris_util']:.2f}",
             f"{data[name]['base_ipc']:.2f}", f"{data[name]['saris_ipc']:.2f}"]
            for name in TABLE1_KERNELS]
    base_util = geomean(d["base_util"] for d in data.values())
    saris_util = geomean(d["saris_util"] for d in data.values())
    base_ipc = geomean(d["base_ipc"] for d in data.values())
    saris_ipc = geomean(d["saris_ipc"] for d in data.values())
    rows.append(["geomean (measured)", f"{base_util:.2f}", f"{saris_util:.2f}",
                 f"{base_ipc:.2f}", f"{saris_ipc:.2f}"])
    rows.append(["geomean (paper)",
                 f"{paper_reference['base_fpu_util_geomean']:.2f}",
                 f"{paper_reference['saris_fpu_util_geomean']:.2f}",
                 f"{paper_reference['base_ipc_geomean']:.2f}",
                 f"{paper_reference['saris_ipc_geomean']:.2f}"])
    print("\n" + format_table(
        ["code", "base util", "saris util", "base IPC", "saris IPC"], rows,
        title="Figure 3b: FPU utilization and per-core IPC"))
    # Shape checks: SARIS reaches near-ideal utilization, the baseline does not.
    assert 0.25 <= base_util <= 0.55
    assert 0.65 <= saris_util <= 0.95
    for name in TABLE1_KERNELS:
        assert data[name]["saris_util"] > data[name]["base_util"]
        assert data[name]["saris_util"] >= 0.60, f"{name}: saris utilization too low"
    # The baseline of register-bound codes is the weakest (paper Section 3.1).
    assert data["j3d27pt"]["base_util"] < data["box2d1r"]["base_util"]
