"""Figure 3b: FPU utilization and per-core IPC for both variants."""

from repro.analysis import format_table
from repro.core.kernels import TABLE1_KERNELS
from repro.sweep.artifacts import build_fig3b


def test_fig3b_fpu_util_and_ipc(benchmark, paper_runs):
    artifact = benchmark(build_fig3b, paper_runs)
    print("\n" + format_table(artifact["columns"], artifact["rows"],
                              title=artifact["title"]))
    data = artifact["data"]["per_kernel"]
    aggregates = artifact["data"]["geomean"]
    # Shape checks: SARIS reaches near-ideal utilization, the baseline does not.
    assert 0.25 <= aggregates["base_util"] <= 0.55
    assert 0.65 <= aggregates["saris_util"] <= 0.95
    for name in TABLE1_KERNELS:
        assert data[name]["saris_util"] > data[name]["base_util"]
        assert data[name]["saris_util"] >= 0.60, f"{name}: saris utilization too low"
    # The baseline of register-bound codes is the weakest (paper Section 3.1).
    assert data["j3d27pt"]["base_util"] < data["box2d1r"]["base_util"]
